//! Wake-up patterns: which stations wake, and when.
//!
//! The paper's adversary chooses, for each run, a set of at most `k` stations
//! and a spontaneous wake-up slot for each ("the worst-case scenario over all
//! possible patterns of spontaneous wake up times"). A [`WakePattern`] is one
//! such choice; this module also provides the standard families of patterns
//! used by the experiments:
//!
//! * [`WakePattern::simultaneous`] — all `k` stations wake at `s` (the
//!   classical Komlós–Greenberg setting, and the only pattern in which
//!   `select_among_the_first` participates);
//! * [`WakePattern::staggered`] — arithmetic wake times `s, s+g, s+2g, …`;
//! * [`WakePattern::uniform_window`] — independent uniform times in a window;
//! * [`WakePattern::batches`] — bursts of simultaneous wakers separated by
//!   gaps (models Ethernet-style load spikes);
//! * [`WakePattern::trickle`] — geometric inter-arrival times (models sparse
//!   sensor traffic).
//!
//! ID selection is factored out into [`IdChoice`] so experiments can control
//! whether the adversary picks IDs adversarially (e.g. a contiguous block is
//! bad for round-robin) or at random.

use crate::ids::{Slot, StationId};
use crate::population::Members;
use crate::rng::{derive_seed, CHURN_STREAM};
use rand::seq::SliceRandom;
use rand::Rng;

/// A contiguous block of stations `lo..hi` all waking at `slot` — the O(1)
/// building block of mega-scale patterns (see [`WakePattern::from_blocks`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WakeBlock {
    /// The common wake slot of the block.
    pub slot: Slot,
    /// First station ID of the block (inclusive).
    pub lo: u32,
    /// One past the last station ID of the block.
    pub hi: u32,
}

/// A complete wake-up pattern: the (station, wake slot) pairs of the at most
/// `k` stations that ever wake. Stations not listed never wake.
///
/// Two representations share the type: **explicit** pairs (the historical
/// form, O(k) memory) and **blocks** of contiguous IDs
/// ([`WakePattern::from_blocks`], O(blocks) memory — what makes `k = 2^24`
/// patterns fit on one box). Accessors that inherently enumerate stations
/// ([`wakes`](WakePattern::wakes), [`awake_at`](WakePattern::awake_at))
/// either panic or materialize for block patterns, as documented.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WakePattern {
    /// Explicit pairs, sorted by (slot, id); empty iff `blocks` is `Some`.
    wakes: Vec<(StationId, Slot)>,
    /// Block representation, sorted by (slot, lo); `None` for explicit
    /// patterns.
    blocks: Option<Vec<WakeBlock>>,
}

/// Errors constructing a [`WakePattern`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatternError {
    /// The same station appears twice.
    DuplicateStation(StationId),
    /// The pattern contains no stations (the problem requires `k ≥ 1`).
    Empty,
}

impl std::fmt::Display for PatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatternError::DuplicateStation(id) => {
                write!(f, "station {id} appears more than once in the wake pattern")
            }
            PatternError::Empty => write!(f, "wake pattern contains no stations"),
        }
    }
}

impl std::error::Error for PatternError {}

impl WakePattern {
    /// Build a pattern from explicit `(station, wake slot)` pairs.
    ///
    /// Pairs are sorted by wake slot (ties by ID) for deterministic engine
    /// behaviour. Fails on duplicate stations or an empty list.
    pub fn new(mut wakes: Vec<(StationId, Slot)>) -> Result<Self, PatternError> {
        if wakes.is_empty() {
            return Err(PatternError::Empty);
        }
        wakes.sort_by_key(|&(id, t)| (t, id));
        // lint: allow(default-hash-state) — membership-only duplicate check; the set is never iterated
        let mut seen = std::collections::HashSet::with_capacity(wakes.len());
        for &(id, _) in &wakes {
            if !seen.insert(id) {
                return Err(PatternError::DuplicateStation(id));
            }
        }
        Ok(WakePattern {
            wakes,
            blocks: None,
        })
    }

    /// Build a pattern from contiguous-ID wake blocks — O(blocks) memory,
    /// the representation for mega-scale patterns (`k = 2^24` is one
    /// block). Blocks are sorted by wake slot (ties by `lo`); empty blocks
    /// (`lo ≥ hi`) are rejected as [`PatternError::Empty`], and a station
    /// covered by two blocks is a [`PatternError::DuplicateStation`].
    pub fn from_blocks(mut blocks: Vec<WakeBlock>) -> Result<Self, PatternError> {
        if blocks.is_empty() || blocks.iter().any(|b| b.lo >= b.hi) {
            return Err(PatternError::Empty);
        }
        blocks.sort_by_key(|b| (b.slot, b.lo));
        // A station may wake only once: block ID ranges must be disjoint.
        let mut spans: Vec<(u32, u32)> = blocks.iter().map(|b| (b.lo, b.hi)).collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(PatternError::DuplicateStation(StationId(w[1].0)));
            }
        }
        Ok(WakePattern {
            wakes: Vec::new(),
            blocks: Some(blocks),
        })
    }

    /// All stations `lo..hi` wake at slot `s` — the one-block mega pattern.
    pub fn range(lo: u32, hi: u32, s: Slot) -> Result<Self, PatternError> {
        Self::from_blocks(vec![WakeBlock { slot: s, lo, hi }])
    }

    /// All `ids` wake at the same slot `s`.
    pub fn simultaneous(ids: &[StationId], s: Slot) -> Result<Self, PatternError> {
        Self::new(ids.iter().map(|&id| (id, s)).collect())
    }

    /// Station `i` (in the given order) wakes at `s + i·gap`.
    pub fn staggered(ids: &[StationId], s: Slot, gap: Slot) -> Result<Self, PatternError> {
        Self::new(
            ids.iter()
                .enumerate()
                .map(|(i, &id)| (id, s + i as Slot * gap))
                .collect(),
        )
    }

    /// Each station wakes at an independent uniform slot in `[s, s+window)`;
    /// at least one station is forced to wake exactly at `s` so that `s`
    /// really is the first wake-up (the paper measures latency from `s`).
    pub fn uniform_window<R: Rng>(
        ids: &[StationId],
        s: Slot,
        window: Slot,
        rng: &mut R,
    ) -> Result<Self, PatternError> {
        let window = window.max(1);
        let mut wakes: Vec<(StationId, Slot)> = ids
            .iter()
            .map(|&id| (id, s + rng.gen_range(0..window)))
            .collect();
        if let Some(first) = wakes.iter_mut().min_by_key(|(_, t)| *t) {
            first.1 = s;
        }
        Self::new(wakes)
    }

    /// Bursts: `sizes[j]` stations wake simultaneously at `s + j·gap`.
    /// `ids` must contain at least `sizes.iter().sum()` stations.
    pub fn batches(
        ids: &[StationId],
        s: Slot,
        gap: Slot,
        sizes: &[usize],
    ) -> Result<Self, PatternError> {
        let total: usize = sizes.iter().sum();
        assert!(
            ids.len() >= total,
            "batches: need {total} ids, got {}",
            ids.len()
        );
        let mut wakes = Vec::with_capacity(total);
        let mut next = 0usize;
        for (j, &sz) in sizes.iter().enumerate() {
            for _ in 0..sz {
                wakes.push((ids[next], s + j as Slot * gap));
                next += 1;
            }
        }
        Self::new(wakes)
    }

    /// Trickle arrivals: the first station wakes at `s`, each next station
    /// wakes after a geometric gap with success probability `p` (expected gap
    /// `1/p` slots).
    pub fn trickle<R: Rng>(
        ids: &[StationId],
        s: Slot,
        p: f64,
        rng: &mut R,
    ) -> Result<Self, PatternError> {
        assert!(p > 0.0 && p <= 1.0, "trickle: p must be in (0, 1]");
        let mut t = s;
        let mut wakes = Vec::with_capacity(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            if i > 0 {
                // Geometric(p) ≥ 1, sampled by inversion.
                let u: f64 = rng.gen_range(0.0..1.0);
                let gap = ((1.0 - u).ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).ceil();
                let gap = if p >= 1.0 { 1 } else { gap.max(1.0) as Slot };
                t = t.saturating_add(gap);
            }
            wakes.push((id, t));
        }
        Self::new(wakes)
    }

    /// The `(station, wake slot)` pairs, sorted by wake slot then ID.
    ///
    /// # Panics
    ///
    /// Panics for block patterns, which deliberately never hold per-station
    /// pairs; use [`batches`](Self::batches) or
    /// [`materialize`](Self::materialize) instead.
    #[inline]
    pub fn wakes(&self) -> &[(StationId, Slot)] {
        assert!(
            self.blocks.is_none(),
            "wakes(): block pattern has no explicit pairs; use batches() or materialize()"
        );
        &self.wakes
    }

    /// Whether this pattern uses the O(blocks) representation.
    #[inline]
    pub fn is_blocks(&self) -> bool {
        self.blocks.is_some()
    }

    /// Number of stations that ever wake (the pattern's `k`).
    #[inline]
    pub fn k(&self) -> usize {
        match &self.blocks {
            Some(bs) => bs.iter().map(|b| (b.hi - b.lo) as usize).sum(),
            None => self.wakes.len(),
        }
    }

    /// The first slot at which some station is awake — the paper's `s`.
    #[inline]
    pub fn s(&self) -> Slot {
        match &self.blocks {
            Some(bs) => bs[0].slot,
            None => self.wakes[0].1,
        }
    }

    /// The last wake-up slot in the pattern.
    #[inline]
    pub fn last_wake(&self) -> Slot {
        match &self.blocks {
            Some(bs) => bs.last().unwrap().slot,
            None => self.wakes.iter().map(|&(_, t)| t).max().unwrap(),
        }
    }

    /// One past the largest station ID in the pattern (for `id < n` checks).
    pub fn max_id_bound(&self) -> u32 {
        match &self.blocks {
            Some(bs) => bs.iter().map(|b| b.hi).max().unwrap(),
            None => self.wakes.iter().map(|&(id, _)| id.0 + 1).max().unwrap(),
        }
    }

    /// The first waking station (in wake order) with ID `≥ n`, if any —
    /// the engine's `id < n` validation, O(pattern) for both
    /// representations.
    pub fn out_of_range(&self, n: u32) -> Option<StationId> {
        match &self.blocks {
            Some(bs) => bs.iter().find(|b| b.hi > n).map(|b| StationId(b.lo.max(n))),
            None => self.wakes.iter().map(|&(id, _)| id).find(|id| id.0 >= n),
        }
    }

    /// The wake slot of `id`, if it ever wakes.
    pub fn wake_of(&self, id: StationId) -> Option<Slot> {
        match &self.blocks {
            Some(bs) => bs
                .iter()
                .find(|b| b.lo <= id.0 && id.0 < b.hi)
                .map(|b| b.slot),
            None => self.wakes.iter().find(|&&(i, _)| i == id).map(|&(_, t)| t),
        }
    }

    /// Replace the wake slot of `id` (used by the spoiler adversary).
    /// Returns `false` if `id` is not in the pattern.
    ///
    /// # Panics
    ///
    /// Panics for block patterns (the spoiler adversary operates on explicit
    /// patterns only).
    pub fn reschedule(&mut self, id: StationId, new_slot: Slot) -> bool {
        assert!(
            self.blocks.is_none(),
            "reschedule(): unsupported on block patterns"
        );
        let Some(pos) = self.wakes.iter().position(|&(i, _)| i == id) else {
            return false;
        };
        self.wakes[pos].1 = new_slot;
        self.wakes.sort_by_key(|&(id, t)| (t, id));
        true
    }

    /// The set of stations awake at slot `t` (woken at or before `t`).
    ///
    /// For block patterns this enumerates every awake station — O(k), not
    /// O(blocks) — so it is meant for tests and small patterns only.
    pub fn awake_at(&self, t: Slot) -> Vec<StationId> {
        match &self.blocks {
            Some(bs) => {
                let mut ids: Vec<StationId> = bs
                    .iter()
                    .filter(|b| b.slot <= t)
                    .flat_map(|b| (b.lo..b.hi).map(StationId))
                    .collect();
                ids.sort_unstable();
                ids
            }
            None => self
                .wakes
                .iter()
                .filter(|&&(_, w)| w <= t)
                .map(|&(id, _)| id)
                .collect(),
        }
    }

    /// The pattern as per-slot wake batches, in ascending slot order — the
    /// class engine's view. Each batch holds the [`Members`] that wake at
    /// that slot. O(runs) memory for both representations.
    pub fn batches_by_slot(&self) -> Vec<(Slot, Members)> {
        match &self.blocks {
            Some(bs) => {
                let mut out: Vec<(Slot, Members)> = Vec::new();
                let mut i = 0;
                while i < bs.len() {
                    let slot = bs[i].slot;
                    let mut runs: Vec<(u32, u32)> = Vec::new();
                    while i < bs.len() && bs[i].slot == slot {
                        runs.push((bs[i].lo, bs[i].hi));
                        i += 1;
                    }
                    runs.sort_unstable();
                    out.push((slot, Members::from_runs(runs)));
                }
                out
            }
            None => {
                let mut out: Vec<(Slot, Members)> = Vec::new();
                let mut i = 0;
                while i < self.wakes.len() {
                    let slot = self.wakes[i].1;
                    let mut ids: Vec<StationId> = Vec::new();
                    while i < self.wakes.len() && self.wakes[i].1 == slot {
                        ids.push(self.wakes[i].0);
                        i += 1;
                    }
                    ids.sort_unstable();
                    out.push((slot, Members::from_sorted_ids(&ids)));
                }
                out
            }
        }
    }

    /// Materialize explicit `(station, wake slot)` pairs, sorted by
    /// (slot, id) — what the concrete engine iterates. O(k) memory for block
    /// patterns (documented cost of running a mega pattern concretely).
    pub fn materialize(&self) -> std::borrow::Cow<'_, [(StationId, Slot)]> {
        match &self.blocks {
            Some(bs) => {
                let mut wakes: Vec<(StationId, Slot)> = bs
                    .iter()
                    .flat_map(|b| (b.lo..b.hi).map(move |id| (StationId(id), b.slot)))
                    .collect();
                wakes.sort_by_key(|&(id, t)| (t, id));
                std::borrow::Cow::Owned(wakes)
            }
            None => std::borrow::Cow::Borrowed(&self.wakes),
        }
    }
}

/// Strategies for choosing *which* `k` of the `n` stations wake.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdChoice {
    /// IDs `0, 1, …, k-1` (a contiguous block — adversarial for round-robin
    /// when combined with a wake just after each turn passes).
    FirstK,
    /// IDs `n-k, …, n-1` (the block round-robin reaches last).
    LastK,
    /// `k` IDs evenly spread over `[0, n)`.
    Spread,
    /// A uniformly random `k`-subset of `[0, n)`.
    Random,
}

impl IdChoice {
    /// Materialize the choice of `k` station IDs out of `n`.
    ///
    /// Panics if `k > n` (a pattern may not wake more stations than exist).
    pub fn pick<R: Rng>(self, n: u32, k: usize, rng: &mut R) -> Vec<StationId> {
        assert!(k as u64 <= n as u64, "IdChoice: k={k} > n={n}");
        match self {
            IdChoice::FirstK => (0..k as u32).map(StationId).collect(),
            IdChoice::LastK => (n - k as u32..n).map(StationId).collect(),
            IdChoice::Spread => (0..k)
                .map(|i| StationId(((i as u64 * n as u64) / k.max(1) as u64) as u32))
                .collect(),
            IdChoice::Random => {
                let mut all: Vec<u32> = (0..n).collect();
                all.shuffle(rng);
                all.truncate(k);
                all.sort_unstable();
                all.into_iter().map(StationId).collect()
            }
        }
    }
}

/// One station's scripted fate: crash at a slot, optionally re-wake later.
///
/// A crash is processed at the top of the crashed slot — the station is
/// replaced by an inert listener *before* it can transmit in that slot. A
/// station that crashes in the same slot it wakes therefore never transmits
/// at all. `rewake: None` is a permanent leave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEntry {
    /// The station this entry applies to.
    pub id: StationId,
    /// The slot at which the station crashes (clamped to its wake slot if
    /// earlier — a station cannot crash before it exists).
    pub crash: Slot,
    /// If `Some(t)`, the station re-wakes at slot `t` with a fresh protocol
    /// state (it lost everything in the crash). Must be strictly after
    /// `crash`.
    pub rewake: Option<Slot>,
}

/// Seed-driven random churn: each waking station independently crashes with
/// probability `crash_ppm` ppm, at a uniform slot within `lifetime` slots of
/// waking, and (optionally) re-wakes a fixed delay later.
///
/// Fates are a pure function of `(run_seed, station id, wake slot)` — no
/// engine-path or thread-count dependence — drawn from the dedicated
/// [`CHURN_STREAM`] so they never correlate with protocol randomness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomChurn {
    /// Per-station crash probability in parts-per-million.
    pub crash_ppm: u32,
    /// Crashes land uniformly in `wake + 1 ..= wake + lifetime`.
    pub lifetime: Slot,
    /// If `Some(d)`, every crashed station re-wakes `d` slots after its
    /// crash; `None` makes every crash a permanent leave.
    pub rewake_after: Option<u64>,
}

/// Errors constructing a [`ChurnScript`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// The same station has two scripted fates.
    DuplicateStation(StationId),
    /// A scripted re-wake is not strictly after its crash.
    RewakeNotAfterCrash(StationId),
    /// Random churn with a zero crash window.
    ZeroLifetime,
    /// Random churn with a zero re-wake delay (a station cannot re-wake in
    /// the slot it crashes).
    ZeroRewakeDelay,
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::DuplicateStation(id) => {
                write!(f, "station {id} has more than one churn entry")
            }
            ChurnError::RewakeNotAfterCrash(id) => {
                write!(f, "station {id}: re-wake slot must be after the crash slot")
            }
            ChurnError::ZeroLifetime => write!(f, "random churn: lifetime must be ≥ 1"),
            ChurnError::ZeroRewakeDelay => {
                write!(f, "random churn: rewake_after must be ≥ 1")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// The adversary's churn choice for a run: which stations crash when, and
/// whether they come back. The default ([`ChurnScript::none`]) is completely
/// inert and gated out of every engine hot path.
///
/// Explicit [`ChurnEntry`]s take precedence over the [`RandomChurn`] draw
/// for their station.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnScript {
    /// Explicit per-station fates, sorted by ID.
    entries: Vec<ChurnEntry>,
    /// Seed-driven fate for every station without an explicit entry.
    random: Option<RandomChurn>,
}

impl ChurnScript {
    /// No churn at all — identical to not threading a script through the
    /// engine.
    #[inline]
    pub fn none() -> Self {
        ChurnScript::default()
    }

    /// A script of explicit per-station fates.
    pub fn scripted(mut entries: Vec<ChurnEntry>) -> Result<Self, ChurnError> {
        entries.sort_by_key(|e| e.id);
        for w in entries.windows(2) {
            if w[0].id == w[1].id {
                return Err(ChurnError::DuplicateStation(w[1].id));
            }
        }
        for e in &entries {
            if let Some(r) = e.rewake {
                if r <= e.crash {
                    return Err(ChurnError::RewakeNotAfterCrash(e.id));
                }
            }
        }
        Ok(ChurnScript {
            entries,
            random: None,
        })
    }

    /// Seed-driven random churn for every waking station.
    pub fn random(rc: RandomChurn) -> Result<Self, ChurnError> {
        if rc.lifetime == 0 {
            return Err(ChurnError::ZeroLifetime);
        }
        if rc.rewake_after == Some(0) {
            return Err(ChurnError::ZeroRewakeDelay);
        }
        Ok(ChurnScript {
            entries: Vec::new(),
            random: Some(rc),
        })
    }

    /// Add explicit entries on top of a random script (entries win for their
    /// station).
    pub fn with_entries(mut self, entries: Vec<ChurnEntry>) -> Result<Self, ChurnError> {
        let random = self.random.take();
        let mut s = ChurnScript::scripted(entries)?;
        s.random = random;
        Ok(s)
    }

    /// `true` iff this script can never crash anything.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.random.is_none_or(|rc| rc.crash_ppm == 0)
    }

    /// The explicit per-station entries, sorted by ID.
    #[inline]
    pub fn entries(&self) -> &[ChurnEntry] {
        &self.entries
    }

    /// The random-churn component, if any.
    #[inline]
    pub fn random_churn(&self) -> Option<RandomChurn> {
        self.random
    }

    /// The fate of station `id` waking at `wake`: `Some((crash, rewake))` if
    /// it crashes, `None` if it lives out the run.
    ///
    /// Pure in `(run_seed, id, wake)` — identical across engine paths and
    /// thread counts. Scripted crashes are clamped to the wake slot (a crash
    /// cannot precede existence) with the re-wake pushed after the clamped
    /// crash.
    pub fn fate(&self, run_seed: u64, id: StationId, wake: Slot) -> Option<(Slot, Option<Slot>)> {
        if let Ok(pos) = self.entries.binary_search_by_key(&id, |e| e.id) {
            let e = self.entries[pos];
            let crash = e.crash.max(wake);
            let rewake = e.rewake.map(|r| r.max(crash + 1));
            return Some((crash, rewake));
        }
        let rc = self.random?;
        if rc.crash_ppm == 0 {
            return None;
        }
        let h = derive_seed(derive_seed(run_seed, CHURN_STREAM), u64::from(id.0));
        if h % 1_000_000 >= u64::from(rc.crash_ppm) {
            return None;
        }
        let crash = wake + 1 + derive_seed(h, 1) % rc.lifetime;
        let rewake = rc.rewake_after.map(|d| crash + d);
        Some((crash, rewake))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    #[test]
    fn new_rejects_duplicates_and_empty() {
        assert_eq!(WakePattern::new(vec![]), Err(PatternError::Empty));
        let err = WakePattern::new(vec![(StationId(1), 0), (StationId(1), 3)]);
        assert_eq!(err, Err(PatternError::DuplicateStation(StationId(1))));
    }

    #[test]
    fn new_sorts_by_slot_then_id() {
        let p = WakePattern::new(vec![
            (StationId(9), 5),
            (StationId(1), 2),
            (StationId(3), 2),
        ])
        .unwrap();
        assert_eq!(
            p.wakes(),
            &[(StationId(1), 2), (StationId(3), 2), (StationId(9), 5)]
        );
        assert_eq!(p.s(), 2);
        assert_eq!(p.last_wake(), 5);
        assert_eq!(p.k(), 3);
    }

    #[test]
    fn simultaneous_all_wake_at_s() {
        let p = WakePattern::simultaneous(&ids(&[4, 2, 7]), 11).unwrap();
        assert!(p.wakes().iter().all(|&(_, t)| t == 11));
        assert_eq!(p.s(), 11);
    }

    #[test]
    fn staggered_is_arithmetic() {
        let p = WakePattern::staggered(&ids(&[0, 1, 2]), 10, 4).unwrap();
        assert_eq!(p.wake_of(StationId(0)), Some(10));
        assert_eq!(p.wake_of(StationId(1)), Some(14));
        assert_eq!(p.wake_of(StationId(2)), Some(18));
        assert_eq!(p.wake_of(StationId(9)), None);
    }

    #[test]
    fn uniform_window_pins_first_wake_to_s() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..20 {
            let p = WakePattern::uniform_window(&ids(&[0, 1, 2, 3]), 100, 50, &mut rng).unwrap();
            assert_eq!(p.s(), 100);
            assert!(p.last_wake() < 150);
        }
    }

    #[test]
    fn batches_layout() {
        let p = WakePattern::batches(&ids(&[0, 1, 2, 3, 4]), 0, 10, &[2, 3]).unwrap();
        assert_eq!(p.awake_at(0), ids(&[0, 1]));
        assert_eq!(p.awake_at(9), ids(&[0, 1]));
        assert_eq!(p.awake_at(10).len(), 5);
    }

    #[test]
    fn trickle_is_strictly_increasing_with_p_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = WakePattern::trickle(&ids(&[0, 1, 2]), 5, 1.0, &mut rng).unwrap();
        assert_eq!(
            p.wakes(),
            &[(StationId(0), 5), (StationId(1), 6), (StationId(2), 7)]
        );
    }

    #[test]
    fn trickle_gaps_scale_with_inverse_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = WakePattern::trickle(&ids(&(0..50).collect::<Vec<_>>()), 0, 0.1, &mut rng).unwrap();
        let span = p.last_wake() - p.s();
        // 49 gaps of expected length 10 ⇒ span ≈ 490; allow generous slack.
        assert!(span > 150, "span {span} suspiciously small");
        assert!(span < 2000, "span {span} suspiciously large");
    }

    #[test]
    fn reschedule_moves_and_resorts() {
        let mut p = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        assert!(p.reschedule(StationId(0), 100));
        assert_eq!(p.wakes(), &[(StationId(1), 0), (StationId(0), 100)]);
        assert!(!p.reschedule(StationId(9), 5));
    }

    #[test]
    fn awake_at_respects_wake_times() {
        let p = WakePattern::staggered(&ids(&[0, 1]), 10, 5).unwrap();
        assert!(p.awake_at(9).is_empty());
        assert_eq!(p.awake_at(10), ids(&[0]));
        assert_eq!(p.awake_at(15), ids(&[0, 1]));
    }

    #[test]
    fn id_choice_first_last_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(IdChoice::FirstK.pick(10, 3, &mut rng), ids(&[0, 1, 2]));
        assert_eq!(IdChoice::LastK.pick(10, 3, &mut rng), ids(&[7, 8, 9]));
        let spread = IdChoice::Spread.pick(12, 4, &mut rng);
        assert_eq!(spread, ids(&[0, 3, 6, 9]));
    }

    #[test]
    fn id_choice_random_is_a_k_subset() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let picked = IdChoice::Random.pick(100, 10, &mut rng);
        assert_eq!(picked.len(), 10);
        let set: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(picked.iter().all(|id| id.0 < 100));
    }

    #[test]
    #[should_panic(expected = "k=11 > n=10")]
    fn id_choice_panics_when_k_exceeds_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        IdChoice::FirstK.pick(10, 11, &mut rng);
    }

    #[test]
    fn block_pattern_accessors() {
        let p = WakePattern::range(0, 1 << 20, 7).unwrap();
        assert!(p.is_blocks());
        assert_eq!(p.k(), 1 << 20);
        assert_eq!(p.s(), 7);
        assert_eq!(p.last_wake(), 7);
        assert_eq!(p.max_id_bound(), 1 << 20);
        assert_eq!(p.wake_of(StationId(0)), Some(7));
        assert_eq!(p.wake_of(StationId((1 << 20) - 1)), Some(7));
        assert_eq!(p.wake_of(StationId(1 << 20)), None);
    }

    #[test]
    fn block_pattern_validation() {
        assert_eq!(WakePattern::from_blocks(vec![]), Err(PatternError::Empty));
        assert_eq!(
            WakePattern::range(5, 5, 0),
            Err(PatternError::Empty),
            "empty block"
        );
        let overlap = WakePattern::from_blocks(vec![
            WakeBlock {
                slot: 0,
                lo: 0,
                hi: 10,
            },
            WakeBlock {
                slot: 4,
                lo: 8,
                hi: 12,
            },
        ]);
        assert_eq!(overlap, Err(PatternError::DuplicateStation(StationId(8))));
    }

    #[test]
    #[should_panic(expected = "block pattern has no explicit pairs")]
    fn block_pattern_wakes_panics() {
        let p = WakePattern::range(0, 4, 0).unwrap();
        let _ = p.wakes();
    }

    #[test]
    fn block_pattern_batches_and_materialize_agree_with_explicit() {
        let blocks = WakePattern::from_blocks(vec![
            WakeBlock {
                slot: 3,
                lo: 6,
                hi: 9,
            },
            WakeBlock {
                slot: 0,
                lo: 0,
                hi: 2,
            },
            WakeBlock {
                slot: 0,
                lo: 4,
                hi: 6,
            },
        ])
        .unwrap();
        let explicit = WakePattern::new(
            blocks
                .materialize()
                .iter()
                .copied()
                .collect::<Vec<(StationId, Slot)>>(),
        )
        .unwrap();
        assert_eq!(blocks.batches_by_slot(), explicit.batches_by_slot());
        assert_eq!(blocks.materialize().as_ref(), explicit.wakes());
        assert_eq!(blocks.k(), explicit.k());
        assert_eq!(blocks.awake_at(0), explicit.awake_at(0));
        assert_eq!(blocks.awake_at(3), explicit.awake_at(3));
        let batches = blocks.batches_by_slot();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0, 0);
        assert_eq!(batches[0].1.count(), 4);
        assert_eq!(batches[1].0, 3);
        assert_eq!(batches[1].1.count(), 3);
    }

    #[test]
    fn explicit_pattern_batches_group_by_slot() {
        let p = WakePattern::new(vec![
            (StationId(5), 2),
            (StationId(0), 0),
            (StationId(1), 0),
            (StationId(6), 2),
        ])
        .unwrap();
        let batches = p.batches_by_slot();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0], (0, Members::range(0, 2)));
        assert_eq!(batches[1], (2, Members::range(5, 7)));
    }

    #[test]
    fn churn_none_is_empty_and_fateless() {
        let s = ChurnScript::none();
        assert!(s.is_empty());
        assert_eq!(s, ChurnScript::default());
        for id in 0..64 {
            assert_eq!(s.fate(42, StationId(id), 0), None);
        }
    }

    #[test]
    fn churn_scripted_validation() {
        let dup = ChurnScript::scripted(vec![
            ChurnEntry {
                id: StationId(1),
                crash: 5,
                rewake: None,
            },
            ChurnEntry {
                id: StationId(1),
                crash: 9,
                rewake: None,
            },
        ]);
        assert_eq!(dup, Err(ChurnError::DuplicateStation(StationId(1))));
        let bad_rewake = ChurnScript::scripted(vec![ChurnEntry {
            id: StationId(2),
            crash: 5,
            rewake: Some(5),
        }]);
        assert_eq!(
            bad_rewake,
            Err(ChurnError::RewakeNotAfterCrash(StationId(2)))
        );
        assert_eq!(
            ChurnScript::random(RandomChurn {
                crash_ppm: 1,
                lifetime: 0,
                rewake_after: None,
            }),
            Err(ChurnError::ZeroLifetime)
        );
        assert_eq!(
            ChurnScript::random(RandomChurn {
                crash_ppm: 1,
                lifetime: 10,
                rewake_after: Some(0),
            }),
            Err(ChurnError::ZeroRewakeDelay)
        );
    }

    #[test]
    fn churn_scripted_fate_clamps_to_wake() {
        let s = ChurnScript::scripted(vec![ChurnEntry {
            id: StationId(3),
            crash: 5,
            rewake: Some(6),
        }])
        .unwrap();
        assert!(!s.is_empty());
        // Wake after the scripted crash: crash clamps to the wake slot and
        // the re-wake is pushed past the clamped crash.
        assert_eq!(s.fate(0, StationId(3), 10), Some((10, Some(11))));
        // Wake before the crash: the script applies verbatim.
        assert_eq!(s.fate(0, StationId(3), 0), Some((5, Some(6))));
        // Other stations are untouched.
        assert_eq!(s.fate(0, StationId(4), 0), None);
    }

    #[test]
    fn churn_random_fate_is_pure_and_rate_bounded() {
        let rc = RandomChurn {
            crash_ppm: 500_000,
            lifetime: 100,
            rewake_after: Some(7),
        };
        let s = ChurnScript::random(rc).unwrap();
        assert!(!s.is_empty());
        let mut crashed = 0;
        for id in 0..512 {
            let a = s.fate(11, StationId(id), 20);
            let b = s.fate(11, StationId(id), 20);
            assert_eq!(a, b, "fate must be pure in (seed, id, wake)");
            if let Some((crash, rewake)) = a {
                crashed += 1;
                assert!((21..=120).contains(&crash), "crash {crash} out of window");
                assert_eq!(rewake, Some(crash + 7));
            }
        }
        // ~50% rate: strictly between never and always.
        assert!((100..412).contains(&crashed), "crashed {crashed}/512");
        // A different seed crashes a different subset.
        let other: Vec<_> = (0..512)
            .map(|id| s.fate(12, StationId(id), 20).is_some())
            .collect();
        let this: Vec<_> = (0..512)
            .map(|id| s.fate(11, StationId(id), 20).is_some())
            .collect();
        assert_ne!(this, other);
    }

    #[test]
    fn churn_zero_ppm_random_is_empty() {
        let s = ChurnScript::random(RandomChurn {
            crash_ppm: 0,
            lifetime: 10,
            rewake_after: None,
        })
        .unwrap();
        assert!(s.is_empty());
        assert_eq!(s.fate(1, StationId(0), 0), None);
    }

    #[test]
    fn churn_entries_override_random() {
        let s = ChurnScript::random(RandomChurn {
            crash_ppm: 1_000_000,
            lifetime: 50,
            rewake_after: None,
        })
        .unwrap()
        .with_entries(vec![ChurnEntry {
            id: StationId(7),
            crash: 3,
            rewake: Some(9),
        }])
        .unwrap();
        // The explicit entry wins for station 7 ...
        assert_eq!(s.fate(5, StationId(7), 0), Some((3, Some(9))));
        // ... while everyone else still gets the certain random crash.
        assert!(s.fate(5, StationId(8), 0).is_some());
    }

    #[test]
    fn adjacent_blocks_coalesce_in_batches() {
        let p = WakePattern::from_blocks(vec![
            WakeBlock {
                slot: 1,
                lo: 0,
                hi: 5,
            },
            WakeBlock {
                slot: 1,
                lo: 5,
                hi: 9,
            },
        ])
        .unwrap();
        let batches = p.batches_by_slot();
        assert_eq!(batches, vec![(1, Members::range(0, 9))]);
    }
}
