//! Integration tests: scheduling correctness and determinism of the
//! work-stealing runner under adversarial thread/batch/placement settings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use wakeup_runner::{BatchSize, OnlineStats, P2Quantile, Placement, Runner, VecCollector};

/// A job whose cost varies wildly with the index (the workload shape that
/// defeats static chunking) and whose result exercises float folds.
fn jagged(i: u64) -> f64 {
    // Busy work proportional to a pseudo-random weight.
    let weight = (i * 2654435761) % 97;
    let mut acc = i as f64;
    for j in 0..weight * 50 {
        acc += ((i + j) as f64).sqrt();
    }
    acc
}

fn fold_all(threads: usize, batch: BatchSize, placement: Placement, runs: u64) -> (Vec<f64>, u64) {
    let mut out = VecCollector::with_capacity(runs as usize);
    let stats = Runner::new()
        .with_threads(threads)
        .with_batch(batch)
        .with_placement(placement)
        .run(runs, jagged, &mut out);
    assert_eq!(stats.runs, runs);
    (out.items, stats.steals)
}

#[test]
fn output_is_bit_identical_across_thread_counts() {
    let reference = fold_all(1, BatchSize::Fixed(8), Placement::Interleaved, 300).0;
    for threads in [2, 3, 8] {
        let (got, _) = fold_all(threads, BatchSize::Fixed(8), Placement::Interleaved, 300);
        assert_eq!(got, reference, "threads = {threads}");
    }
}

/// Pre-folded partial for the `run_folded` tests: integer aggregates merge
/// associatively; the raw observations ride along for order-exact FP replay.
#[derive(Default)]
struct Partial {
    count: u64,
    sum: u64,
    max: u64,
    obs: Vec<f64>,
}

fn prefold_all(
    threads: usize,
    batch: BatchSize,
    placement: Placement,
    runs: u64,
) -> (u64, u64, u64, OnlineStats) {
    let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
    let mut stats = OnlineStats::new();
    let rs = Runner::new()
        .with_threads(threads)
        .with_batch(batch)
        .with_placement(placement)
        .run_folded(
            runs,
            jagged,
            Partial::default,
            |a: &mut Partial, i, x: f64| {
                a.count += 1;
                a.sum += i * i;
                a.max = a.max.max(i * 31 % 101);
                a.obs.push(x);
            },
            wakeup_runner::collect::from_fn(|_start, p: Partial| {
                count += p.count;
                sum += p.sum;
                max = max.max(p.max);
                for x in p.obs {
                    stats.push(x); // replayed in index order — FP-exact
                }
            }),
        );
    assert_eq!(rs.runs, runs);
    (count, sum, max, stats)
}

#[test]
fn run_folded_aggregates_are_bit_identical_across_thread_counts() {
    // Sequential reference: same folds, no pre-folding at all.
    let mut ref_stats = OnlineStats::new();
    let (mut ref_sum, mut ref_max) = (0u64, 0u64);
    for i in 0..300u64 {
        ref_sum += i * i;
        ref_max = ref_max.max(i * 31 % 101);
        ref_stats.push(jagged(i));
    }
    for (threads, batch) in [
        (1, BatchSize::Fixed(8)),
        (3, BatchSize::Fixed(8)),
        (8, BatchSize::Fixed(1)),
        (4, BatchSize::default()),
    ] {
        let (count, sum, max, stats) = prefold_all(threads, batch, Placement::Interleaved, 300);
        assert_eq!(count, 300, "threads={threads}");
        assert_eq!(sum, ref_sum, "threads={threads}");
        assert_eq!(max, ref_max, "threads={threads}");
        // Bit-identical, not approximately equal: the replayed fold order
        // is the sequential order.
        assert_eq!(stats, ref_stats, "threads={threads}");
    }
}

#[test]
fn run_folded_under_forced_steals_matches_inline() {
    let reference = prefold_all(1, BatchSize::Fixed(1), Placement::Interleaved, 150);
    let got = prefold_all(4, BatchSize::Fixed(1), Placement::Packed, 150);
    assert_eq!(got.0, reference.0);
    assert_eq!(got.1, reference.1);
    assert_eq!(got.2, reference.2);
    assert_eq!(got.3, reference.3);
}

#[test]
fn forced_steal_schedule_is_deterministic() {
    // Packed placement + single-run batches: workers 1..T can only make
    // progress by stealing, so steal interleavings saturate.
    let reference = fold_all(1, BatchSize::Fixed(1), Placement::Interleaved, 200).0;
    let (got, steals) = fold_all(4, BatchSize::Fixed(1), Placement::Packed, 200);
    assert_eq!(got, reference);
    // With everything packed on shard 0, any parallelism at all implies
    // steals (single-core machines may still schedule worker 0 for all).
    if std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        > 1
    {
        assert!(steals > 0, "packed placement should force steals");
    }
}

#[test]
fn half_deque_stealing_preserves_seed_order_on_a_skewed_workload() {
    // A cost ramp across the seed range, all packed on shard 0: thieves
    // bootstrap by taking half-deques, and the reorder buffer must still
    // fold bit-identically to the single-threaded reference.
    let ramped = |i: u64| {
        let mut acc = i as f64;
        for j in 0..i * 4 {
            acc += ((j ^ i) as f64).sqrt();
        }
        acc
    };
    let run = |threads: usize| {
        let mut out = VecCollector::with_capacity(300);
        let stats = Runner::new()
            .with_threads(threads)
            .with_batch(BatchSize::Fixed(2))
            .with_placement(Placement::Packed)
            .run(300, ramped, &mut out);
        (out.items, stats.steals)
    };
    let (reference, _) = run(1);
    assert_eq!(reference, (0..300).map(ramped).collect::<Vec<f64>>());
    for threads in [2, 4] {
        let (got, _) = run(threads);
        assert_eq!(got, reference, "threads = {threads}");
    }
}

#[test]
fn streaming_accumulators_match_sequential_folds_exactly() {
    // Welford mean/M2 and the P² markers are order-sensitive in the last
    // float bits; the ordered reduction must erase the thread count.
    let fold = |threads: usize| {
        let mut stats = OnlineStats::new();
        let mut p90 = P2Quantile::new(0.9);
        Runner::new()
            .with_threads(threads)
            .with_batch(BatchSize::Fixed(3))
            .run(
                500,
                jagged,
                wakeup_runner::collect::from_fn(|_, x: f64| {
                    stats.push(x);
                    p90.push(x);
                }),
            );
        (
            stats.mean().to_bits(),
            stats.sd().to_bits(),
            p90.value().unwrap().to_bits(),
        )
    };
    let a = fold(1);
    for threads in [2, 8] {
        assert_eq!(fold(threads), a, "threads = {threads}");
    }
}

#[test]
fn more_runs_than_threads_and_vice_versa() {
    // runs < threads: the pool is clamped, every index still runs once.
    let (items, _) = fold_all(16, BatchSize::Fixed(4), Placement::Interleaved, 3);
    assert_eq!(items.len(), 3);
    // runs = 1.
    let (items, _) = fold_all(8, BatchSize::default(), Placement::Interleaved, 1);
    assert_eq!(items.len(), 1);
}

#[test]
fn zero_runs_is_a_noop() {
    let mut out = VecCollector::<f64>::with_capacity(0);
    let stats = Runner::new().with_threads(0).run(0, jagged, &mut out);
    assert!(out.items.is_empty());
    assert_eq!(stats.runs, 0);
    assert_eq!(stats.steals, 0);
}

#[test]
fn zero_threads_is_clamped_not_a_panic() {
    let (items, _) = fold_all(0, BatchSize::Fixed(2), Placement::Interleaved, 10);
    assert_eq!(items.len(), 10);
}

#[test]
fn auto_batching_covers_every_index_exactly_once() {
    let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
    let stats = Runner::new()
        .with_threads(4)
        .with_batch(BatchSize::Auto(Duration::from_micros(200)))
        .run(
            1000,
            |i| {
                hits[i as usize].fetch_add(1, Ordering::Relaxed);
                i
            },
            wakeup_runner::collect::from_fn(|i, item: u64| assert_eq!(i, item)),
        );
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    assert!(stats.batch >= 1);
    assert_eq!(stats.calibration_runs, 4);
    assert_eq!(
        stats.worker_runs.iter().sum::<u64>(),
        1000 - stats.calibration_runs
    );
}

#[test]
fn map_returns_results_in_index_order() {
    let (items, stats) = Runner::new()
        .with_threads(5)
        .with_batch(BatchSize::Fixed(7))
        .map(100, |i| i * i);
    assert_eq!(items, (0..100).map(|i| i * i).collect::<Vec<_>>());
    assert!(stats.elapsed > Duration::ZERO);
}

#[test]
fn slow_early_batch_does_not_stall_or_corrupt_the_fold() {
    // One expensive run near the start exercises the admission window: the
    // reducer's frontier stalls on it while other workers race ahead, and
    // the fold must still come out in index order.
    let slow_jagged = |i: u64| {
        if i == 3 {
            std::thread::sleep(Duration::from_millis(120));
        }
        jagged(i)
    };
    let mut out = VecCollector::with_capacity(400);
    let stats = Runner::new()
        .with_threads(8)
        .with_batch(BatchSize::Fixed(1))
        .run(400, slow_jagged, &mut out);
    assert_eq!(stats.runs, 400);
    let reference: Vec<f64> = (0..400).map(jagged).collect();
    assert_eq!(out.items, reference);
}

#[test]
fn worker_panic_propagates_instead_of_hanging() {
    // A panicking job must poison the pool: parked workers bail, the scope
    // re-raises, and the caller sees the panic rather than a deadlock.
    // 400 single-run batches with a window of 32·4 = 128: workers must hit
    // the admission window after the dead batch freezes the frontier, so
    // the poison path (not just channel disconnect) is exercised.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut out = VecCollector::with_capacity(400);
        Runner::new()
            .with_threads(4)
            .with_batch(BatchSize::Fixed(1))
            .run(
                400,
                |i| {
                    if i == 7 {
                        panic!("job 7 exploded");
                    }
                    i
                },
                &mut out,
            );
    }));
    assert!(result.is_err(), "panic must propagate to the caller");
}

#[test]
fn collector_panic_propagates_while_workers_are_parked() {
    // The reducer (collector code) panics at the moment a worker is parked
    // at the admission window: job 0 stalls the frontier long enough for
    // the other worker to race past frontier+window and park; folding
    // index 0 then panics in the collector. The run must unwind, not hang
    // on joining the parked worker.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Runner::new()
            .with_threads(2)
            .with_batch(BatchSize::Fixed(1))
            .run(
                1000,
                |i| {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(300));
                    }
                    i
                },
                wakeup_runner::collect::from_fn(|i, _item: u64| {
                    if i == 0 {
                        panic!("collector rejects index 0");
                    }
                }),
            );
    }));
    assert!(result.is_err(), "collector panic must propagate");
}

#[test]
fn progress_lines_route_through_the_plugged_sink() {
    use std::sync::{Arc, Mutex};
    use wakeup_runner::{Progress, ProgressSink};

    #[derive(Default)]
    struct Capture(Mutex<Vec<String>>);
    impl ProgressSink for Capture {
        fn progress_line(&self, line: &str) {
            self.0.lock().unwrap().push(line.to_string());
        }
    }

    let capture = Arc::new(Capture::default());
    let progress = Progress::new(Duration::from_millis(0), "sink-test")
        .with_sink(Arc::clone(&capture) as Arc<dyn ProgressSink>);
    let mut out = VecCollector::with_capacity(64);
    Runner::new()
        .with_threads(2)
        .with_batch(BatchSize::Fixed(4))
        .with_progress(progress)
        .run(64, jagged, &mut out);
    let lines = capture.0.lock().unwrap();
    assert!(!lines.is_empty(), "no progress lines captured");
    assert!(
        lines.iter().all(|l| l.starts_with("[sink-test]")),
        "unlabelled line in {lines:?}"
    );
    assert!(
        lines.last().unwrap().contains("done:"),
        "missing final summary line: {lines:?}"
    );
}

#[test]
fn p2_quantiles_track_exact_quantiles_on_a_small_ensemble() {
    // The satellite check: sketch vs exact on ensemble-sized samples.
    let samples: Vec<f64> = (0..200u64).map(jagged).collect();
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for p in [0.5, 0.9, 0.99] {
        let mut sk = P2Quantile::new(p);
        for &x in &samples {
            sk.push(x);
        }
        let pos = p * (sorted.len() - 1) as f64;
        let exact = {
            let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
            let frac = pos - pos.floor();
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        let est = sk.value().unwrap();
        let spread = sorted[sorted.len() - 1] - sorted[0];
        assert!(
            (est - exact).abs() <= 0.05 * spread,
            "p={p}: sketch {est} vs exact {exact} (spread {spread})"
        );
    }
}

#[test]
fn final_100_percent_line_is_guaranteed_even_for_fast_sweeps() {
    use std::sync::{Arc, Mutex};
    use wakeup_runner::{Progress, ProgressSink};

    #[derive(Default)]
    struct Capture(Mutex<Vec<String>>);
    impl ProgressSink for Capture {
        fn progress_line(&self, line: &str) {
            self.0.lock().unwrap().push(line.to_string());
        }
    }

    // An interval far longer than the sweep: the throttled meter never
    // ticks, so completion must be reported by the final unconditional line.
    let capture = Arc::new(Capture::default());
    let progress = Progress::new(Duration::from_secs(3600), "fast")
        .with_sink(Arc::clone(&capture) as Arc<dyn ProgressSink>);
    let mut out = VecCollector::with_capacity(16);
    Runner::new()
        .with_threads(2)
        .with_batch(BatchSize::Fixed(2))
        .with_progress(progress)
        .run(16, |i| i, &mut out);
    let lines = capture.0.lock().unwrap();
    assert!(
        lines.iter().any(|l| l.contains("16/16 runs (100.0%)")),
        "missing guaranteed 100% line in {lines:?}"
    );
    assert!(lines.last().unwrap().contains("done:"));
}

#[test]
fn per_worker_stats_phases_and_reorder_peak_are_populated() {
    // Packed placement funnels the whole queue into worker 0's shard, so
    // workers 1 and 2 must steal to run anything — but whether they get
    // the chance is a thread-scheduling race: worker 0 can drain 256 tiny
    // runs before the other workers finish spawning. The consistency
    // invariants are deterministic and assert on every attempt; the
    // stealing/buffering counters are retried until the race is won.
    let mut last_steals = 0;
    for _ in 0..32 {
        let mut out = VecCollector::with_capacity(256);
        let stats = Runner::new()
            .with_threads(3)
            .with_batch(BatchSize::Fixed(4))
            .with_placement(Placement::Packed)
            .run(256, jagged, &mut out);
        assert_eq!(stats.workers.len(), 3);
        assert_eq!(
            stats.workers.iter().map(|w| w.runs).sum::<u64>(),
            256 - stats.calibration_runs,
            "worker runs must cover the parallel phase"
        );
        assert_eq!(
            stats.workers.iter().map(|w| w.steals).sum::<u64>(),
            stats.steals,
            "per-worker steals must sum to the queue total"
        );
        assert!(stats.phases.simulation >= stats.phases.reduction);
        assert!(stats.phases.simulation.as_nanos() > 0);
        // Per-worker run counts agree with the legacy field.
        assert_eq!(
            stats.worker_runs,
            stats.workers.iter().map(|w| w.runs).collect::<Vec<_>>()
        );
        // Workers 1 and 2 stole before running anything, deep steals
        // parked batches in their own shards, and completion buffered.
        if stats.steals >= 2
            && stats.workers.iter().skip(1).any(|w| w.queue_depth_hw > 0)
            && stats.reorder_peak >= 1
        {
            return;
        }
        last_steals = stats.steals;
    }
    panic!("workers 1 and 2 never stole in 32 packed sweeps (last: {last_steals} steals)");
}

#[test]
fn inline_path_reports_a_single_synthetic_worker() {
    let mut out = VecCollector::with_capacity(32);
    let stats = Runner::new()
        .with_threads(1)
        .with_batch(BatchSize::Fixed(8))
        .run(32, |i| i, &mut out);
    assert_eq!(stats.workers.len(), 1);
    assert_eq!(stats.workers[0].runs, 32 - stats.calibration_runs);
    assert_eq!(stats.workers[0].steals, 0);
    assert_eq!(stats.reorder_peak, 0, "inline path never buffers");
}
