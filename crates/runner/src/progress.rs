//! Optional live progress/throughput reporting for long sweeps.
//!
//! The runner's reducer loop ticks the internal meter while it waits for
//! results; the meter formats a one-line update at most once per configured
//! interval and hands it to the [`ProgressSink`] the caller plugged in:
//!
//! ```text
//! [runner] 412000/1048576 runs (39.3%) | 183402 runs/s | 12 steals
//! ```
//!
//! The default sink is [`StderrProgress`] (tables on stdout stay
//! machine-readable); experiment drivers route the lines through their
//! output sink instead so progress ends up wherever the operator is looking
//! — and never inside a machine-readable data stream.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// Destination for progress lines. Implementations must be cheap and
/// non-blocking-ish: lines arrive from the reducer thread mid-run.
pub trait ProgressSink: Send + Sync {
    /// Deliver one formatted progress line (no trailing newline).
    fn progress_line(&self, line: &str);
}

/// The default sink: one line per update on stderr.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn progress_line(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// Configuration of live progress reporting.
#[derive(Clone)]
pub struct Progress {
    /// Minimum interval between updates.
    pub every: Duration,
    /// Label prefixed to each line (e.g. the experiment table's name).
    pub label: String,
    /// Where the formatted lines go (default: stderr).
    sink: Arc<dyn ProgressSink>,
}

impl std::fmt::Debug for Progress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Progress")
            .field("every", &self.every)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

impl Progress {
    /// Report roughly every `every`, labelled `label`, to stderr.
    pub fn new(every: Duration, label: impl Into<String>) -> Self {
        Progress {
            every,
            label: label.into(),
            sink: Arc::new(StderrProgress),
        }
    }

    /// Route the lines to `sink` instead of stderr.
    pub fn with_sink(mut self, sink: Arc<dyn ProgressSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Deliver one line through the configured sink.
    pub(crate) fn emit(&self, line: &str) {
        self.sink.progress_line(line);
    }
}

/// Internal throttle around a [`Progress`] spec.
pub(crate) struct ProgressMeter {
    spec: Progress,
    started: Instant,
    last: Instant,
}

impl ProgressMeter {
    pub(crate) fn new(spec: Progress) -> Self {
        let now = Instant::now();
        ProgressMeter {
            spec,
            started: now,
            last: now,
        }
    }

    /// Emit an update if the interval elapsed.
    pub(crate) fn tick(&mut self, done: u64, total: u64, steals: u64) {
        if self.last.elapsed() < self.spec.every {
            return;
        }
        self.last = Instant::now();
        let secs = self.started.elapsed().as_secs_f64().max(1e-9);
        self.spec.emit(&format!(
            "[{}] {done}/{total} runs ({:.1}%) | {:.0} runs/s | {steals} steals",
            self.spec.label,
            100.0 * done as f64 / total.max(1) as f64,
            done as f64 / secs,
        ));
    }
}
