//! Optional live progress/throughput reporting for long sweeps.
//!
//! The runner's reducer loop ticks the internal meter while it waits for
//! results; the meter prints a one-line update to **stderr** (tables on
//! stdout stay machine-readable) at most once per configured interval:
//!
//! ```text
//! [runner] 412000/1048576 runs (39.3%) | 183402 runs/s | 12 steals
//! ```

use std::time::{Duration, Instant};

/// Configuration of live progress reporting.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Minimum interval between updates.
    pub every: Duration,
    /// Label prefixed to each line (e.g. the experiment table's name).
    pub label: String,
}

impl Progress {
    /// Report roughly every `every`, labelled `label`.
    pub fn new(every: Duration, label: impl Into<String>) -> Self {
        Progress {
            every,
            label: label.into(),
        }
    }
}

/// Internal throttle around a [`Progress`] spec.
pub(crate) struct ProgressMeter {
    spec: Progress,
    started: Instant,
    last: Instant,
}

impl ProgressMeter {
    pub(crate) fn new(spec: Progress) -> Self {
        let now = Instant::now();
        ProgressMeter {
            spec,
            started: now,
            last: now,
        }
    }

    /// Print an update if the interval elapsed.
    pub(crate) fn tick(&mut self, done: u64, total: u64, steals: u64) {
        if self.last.elapsed() < self.spec.every {
            return;
        }
        self.last = Instant::now();
        let secs = self.started.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "[{}] {done}/{total} runs ({:.1}%) | {:.0} runs/s | {steals} steals",
            self.spec.label,
            100.0 * done as f64 / total.max(1) as f64,
            done as f64 / secs,
        );
    }
}
