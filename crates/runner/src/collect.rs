//! Streaming aggregation: the [`Collector`] contract and ready-made
//! accumulators.
//!
//! The runner folds per-run items into a collector **strictly in run-index
//! order**, on the caller's thread, no matter which worker produced each
//! item or in what order the steals interleaved. Any deterministic
//! collector therefore produces **bit-identical** output across thread
//! counts — the floating-point folds see exactly the sequence a sequential
//! loop would feed them.
//!
//! Two accumulators cover the common ensemble needs without materializing a
//! per-run vector:
//!
//! * [`OnlineStats`] — count/mean/sd (Welford), exact min/max, 95% CI;
//! * [`P2Quantile`] — the Jain–Chlamtac P² sketch: a five-marker streaming
//!   quantile estimate in O(1) memory, exact for the first five samples.

/// Folds per-run items in run-index order.
///
/// `collect(index, item)` is called once per run index, in ascending index
/// order, on the thread that invoked [`run`](crate::Runner::run). Implementors
/// never need interior synchronization.
pub trait Collector {
    /// The per-run result produced by the job closure.
    type Item;

    /// Fold the result of run `index` into the aggregate.
    fn collect(&mut self, index: u64, item: Self::Item);
}

/// A collector that simply materializes items in index order — the bridge
/// for callers that still want a `Vec` (compat paths, small ensembles).
#[derive(Debug, Default)]
pub struct VecCollector<T> {
    /// The items, in run-index order.
    pub items: Vec<T>,
}

impl<T> VecCollector<T> {
    /// An empty collector with capacity for `n` items.
    pub fn with_capacity(n: usize) -> Self {
        VecCollector {
            items: Vec::with_capacity(n),
        }
    }
}

impl<T> Collector for VecCollector<T> {
    type Item = T;

    fn collect(&mut self, index: u64, item: T) {
        debug_assert_eq!(index as usize, self.items.len(), "indices out of order");
        self.items.push(item);
    }
}

/// `&mut C` delegates, so collectors can be passed by reference.
impl<C: Collector> Collector for &mut C {
    type Item = C::Item;

    fn collect(&mut self, index: u64, item: C::Item) {
        (**self).collect(index, item)
    }
}

/// A collector wrapping a closure; build one with [`from_fn`].
pub struct FnCollector<T, F: FnMut(u64, T)> {
    f: F,
    _marker: std::marker::PhantomData<fn(T)>,
}

/// Wrap `f` as a collector: `runner.run(n, job, from_fn(|i, x| …))`.
pub fn from_fn<T, F: FnMut(u64, T)>(f: F) -> FnCollector<T, F> {
    FnCollector {
        f,
        _marker: std::marker::PhantomData,
    }
}

impl<T, F: FnMut(u64, T)> Collector for FnCollector<T, F> {
    type Item = T;

    fn collect(&mut self, index: u64, item: T) {
        (self.f)(index, item)
    }
}

/// Streaming count/mean/variance (Welford's algorithm) with exact min/max.
///
/// Folding is order-sensitive in the last floating-point bits — which is
/// exactly why the runner replays items in a fixed order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    /// Same as [`new`](OnlineStats::new) — the min/max sentinels must be
    /// ±∞, not the zero a derived `Default` would produce.
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (Bessel-corrected; 0 for count < 2).
    pub fn sd(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·sd/√count`; 0 for count < 2).
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.sd() / (self.count as f64).sqrt()
        }
    }
}

/// The P² streaming quantile sketch of Jain & Chlamtac (CACM 1985).
///
/// Five markers track the running `q`-quantile in O(1) memory: the extremes,
/// the target quantile and its two halves. Marker heights move by the
/// piecewise-parabolic (P²) update, falling back to linear when the parabola
/// would overshoot a neighbour. Until five observations have arrived the
/// sketch stores them verbatim and [`value`](P2Quantile::value) interpolates
/// exactly, so small ensembles lose no accuracy.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights.
    q: [f64; 5],
    /// Marker positions (1-based counts, as in the paper).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired-position increments per observation.
    dn: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// A sketch for the `p`-quantile, `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            // Bootstrap: store verbatim, keep sorted.
            self.q[self.count as usize] = x;
            self.count += 1;
            let filled = self.count as usize;
            self.q[..filled].sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
            return;
        }
        self.count += 1;

        // Locate the cell k with q[k] <= x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[0] <= x < q[4]: find the marker cell.
            (1..4).find(|&i| x < self.q[i]).unwrap_or(4) - 1
        };

        // Shift positions of markers above the cell; advance desired ones.
        for i in k + 1..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Nudge the three interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// The piecewise-parabolic height prediction for marker `i` moved by `d`.
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// The linear fallback height prediction.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate. Exact (linear interpolation on the
    /// sorted sample) while fewer than five observations have arrived;
    /// `None` when empty.
    pub fn value(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                let sorted = &self.q[..c as usize];
                let pos = self.p * (sorted.len() - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(values: &mut [f64], p: f64) -> f64 {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pos = p * (values.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        values[lo] * (1.0 - frac) + values[hi] * frac
    }

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.sd() - 2.5f64.sqrt()).abs() < 1e-12);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sd(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut sk = P2Quantile::new(0.5);
        assert_eq!(sk.value(), None);
        sk.push(10.0);
        assert_eq!(sk.value(), Some(10.0));
        sk.push(20.0);
        assert_eq!(sk.value(), Some(15.0));
        sk.push(0.0);
        assert_eq!(sk.value(), Some(10.0));
    }

    #[test]
    fn p2_tracks_the_median_of_a_uniform_stream() {
        let mut sk = P2Quantile::new(0.5);
        let mut values = Vec::new();
        let mut x = 1u64;
        for _ in 0..10_000 {
            // Deterministic pseudo-random walk (xorshift).
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1_000_000) as f64 / 1000.0;
            sk.push(v);
            values.push(v);
        }
        let exact = exact_quantile(&mut values, 0.5);
        let est = sk.value().unwrap();
        assert!(
            (est - exact).abs() < 0.02 * 1000.0,
            "P² median {est} vs exact {exact}"
        );
    }

    #[test]
    fn p2_p90_on_a_skewed_stream() {
        let mut sk = P2Quantile::new(0.9);
        let mut values = Vec::new();
        for i in 0..5000u64 {
            let v = ((i * 37) % 100) as f64;
            let v = v * v; // skew
            sk.push(v);
            values.push(v);
        }
        let exact = exact_quantile(&mut values, 0.9);
        let est = sk.value().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.05,
            "P² p90 {est} vs exact {exact}"
        );
    }

    #[test]
    fn vec_collector_keeps_order() {
        let mut c = VecCollector::with_capacity(3);
        c.collect(0, "a");
        c.collect(1, "b");
        c.collect(2, "c");
        assert_eq!(c.items, vec!["a", "b", "c"]);
    }
}
