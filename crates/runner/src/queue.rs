//! The sharded batch queue behind the runner.
//!
//! Work is a contiguous range of run indices `[0, runs)`, pre-split into
//! *batches* (sub-ranges). Each worker owns one shard — a mutex-protected
//! deque of batches — and drains it front-to-back, so a worker processes its
//! own work in ascending index order (which keeps the reduction's reorder
//! buffer small). A worker whose shard runs dry *steals* from the back of
//! the currently fullest shard: the back holds the victim's furthest-future
//! indices, the work it would otherwise reach last. When the victim's deque
//! is deep (≥ `DEEP_SHARD` batches), the thief takes the whole back
//! *half* in one lock acquisition instead of a single batch — a skewed
//! shard then rebalances in O(log batches) steals rather than one steal
//! per batch, and the stolen run of consecutive batches keeps the thief
//! advancing through the index space in order.
//!
//! Mutex-sharded deques (rather than lock-free Chase–Lev deques) are a
//! deliberate simplicity/portability trade-off: batches are sized by
//! calibration to amortize dispatch (~milliseconds of simulation each), so
//! queue operations are micro-contended and far off the critical path.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How the initial batches are dealt across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Placement {
    /// Deal batches round-robin (batch `j` to shard `j mod shards`), so
    /// workers draining their shards front-to-back advance through the
    /// index space roughly in lockstep. This keeps the reducer's reorder
    /// buffer near O(threads · batch): a contiguous block-per-worker split
    /// would make index order wait on worker 0's whole block while the
    /// other workers' results pile up. The default.
    #[default]
    Interleaved,
    /// Give *all* batches to shard 0. Every other worker can only make
    /// progress by stealing — a scheduling stress mode used to exercise
    /// steal interleavings in tests.
    Packed,
}

/// A victim deque at least this deep surrenders its back half to a thief
/// instead of a single batch.
const DEEP_SHARD: usize = 4;

/// Per-worker scheduling counters, snapshotted by
/// [`BatchQueue::worker_stats`]. All counts cover one queue lifetime (one
/// parallel phase).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerQueueStats {
    /// Successful steals performed *by* this worker.
    pub steals: u64,
    /// Steal scans that found nothing to take (every shard looked empty
    /// while work was still in flight, or the victim drained between the
    /// scan and the lock).
    pub fail_scans: u64,
    /// High-water batch depth of this worker's own shard (initial deal and
    /// stolen half-deques included).
    pub queue_depth_hw: u64,
}

/// A sharded queue of index-range batches with steal-on-empty (single batch
/// from shallow victims, half the deque from deep ones).
pub struct BatchQueue {
    shards: Vec<Mutex<VecDeque<Range<u64>>>>,
    steals: AtomicU64,
    /// Per-worker telemetry: successful steals, failed steal scans, own
    /// shard depth high-water. Indexed like `shards`.
    worker_steals: Vec<AtomicU64>,
    worker_fail_scans: Vec<AtomicU64>,
    depth_hw: Vec<AtomicU64>,
    /// Batches still queued somewhere (decremented when a batch is
    /// *returned* from [`pop`](Self::pop), not when it merely moves between
    /// shards). A multi-shard emptiness scan is not atomic — it can race
    /// with a half-deque move and see every shard empty while work is in
    /// transit — so `pop` returns `None` only once this counter agrees,
    /// keeping "None is final" true for exiting workers.
    remaining: AtomicU64,
}

impl BatchQueue {
    /// Split `work` into batches of `batch` indices (the last one may be
    /// short) and deal them across `shards` shards.
    pub fn new(work: Range<u64>, batch: u64, shards: usize, placement: Placement) -> Self {
        assert!(batch > 0, "batch size must be positive");
        assert!(shards > 0, "need at least one shard");
        let mut batches = Vec::new();
        let mut start = work.start;
        while start < work.end {
            let end = work.end.min(start + batch);
            batches.push(start..end);
            start = end;
        }
        let mut queues: Vec<VecDeque<Range<u64>>> = (0..shards).map(|_| VecDeque::new()).collect();
        let total = batches.len() as u64;
        match placement {
            Placement::Interleaved => {
                for (j, b) in batches.into_iter().enumerate() {
                    queues[j % shards].push_back(b);
                }
            }
            Placement::Packed => queues[0].extend(batches),
        }
        let depth_hw = queues
            .iter()
            .map(|q| AtomicU64::new(q.len() as u64))
            .collect();
        BatchQueue {
            shards: queues.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
            worker_steals: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            worker_fail_scans: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            depth_hw,
            remaining: AtomicU64::new(total),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Pop the next batch for worker `me`: the front of its own shard, or —
    /// when that is empty — stolen from the back of the fullest other
    /// shard: one batch if the victim is shallow, the whole back half if it
    /// is deep (≥ `DEEP_SHARD` batches; the surplus lands in `me`'s own
    /// shard, in index order). `None` means no work is left anywhere
    /// (workers then exit; batches are never re-queued, so a `None` is
    /// final).
    pub fn pop(&self, me: usize) -> Option<Range<u64>> {
        if let Some(b) = self.shards[me].lock().unwrap().pop_front() {
            self.remaining.fetch_sub(1, Ordering::Release);
            return Some(b);
        }
        // Steal from the shard with the most remaining batches.
        loop {
            let victim = self
                .shards
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != me)
                .map(|(i, s)| (s.lock().unwrap().len(), i))
                .max()?;
            let (len, idx) = victim;
            if len == 0 {
                // The scan saw every shard empty, but it is not atomic: a
                // half-deque move may have work in transit between shards.
                // Only the queued-batch counter makes `None` final; while
                // it disagrees, rescan (the move completes under its locks,
                // so the next scan sees the batches).
                if self.remaining.load(Ordering::Acquire) == 0 {
                    return None;
                }
                self.worker_fail_scans[me].fetch_add(1, Ordering::Relaxed);
                if let Some(b) = self.shards[me].lock().unwrap().pop_front() {
                    self.remaining.fetch_sub(1, Ordering::Release);
                    return Some(b);
                }
                std::hint::spin_loop();
                continue;
            }
            // Lock the victim and our own shard together, in index order
            // (the only two-lock site, so the ordering rules out deadlock);
            // the stolen half moves atomically with respect to both shards,
            // and the `remaining` counter covers the scan race above.
            let (lo, hi) = (idx.min(me), idx.max(me));
            let mut lo_q = self.shards[lo].lock().unwrap();
            let mut hi_q = self.shards[hi].lock().unwrap();
            let (victim_q, my_q) = if lo == idx {
                (&mut lo_q, &mut hi_q)
            } else {
                (&mut hi_q, &mut lo_q)
            };
            if victim_q.len() >= DEEP_SHARD {
                // Deep victim: take the back half in one go. The stolen
                // batches are consecutive future work in ascending order;
                // the thief runs the first one now and keeps the rest in
                // its own shard (empty — only its owner ever pushes to it).
                let keep = victim_q.len() - victim_q.len() / 2;
                let mut stolen = victim_q.split_off(keep);
                let first = stolen.pop_front().expect("back half is non-empty");
                my_q.append(&mut stolen);
                self.depth_hw[me].fetch_max(my_q.len() as u64, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.worker_steals[me].fetch_add(1, Ordering::Relaxed);
                self.remaining.fetch_sub(1, Ordering::Release);
                return Some(first);
            }
            if let Some(b) = victim_q.pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.worker_steals[me].fetch_add(1, Ordering::Relaxed);
                self.remaining.fetch_sub(1, Ordering::Release);
                return Some(b);
            }
            // The victim drained between the scan and the lock; rescan.
            self.worker_fail_scans[me].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Snapshot the per-worker scheduling counters (one entry per shard).
    pub fn worker_stats(&self) -> Vec<WorkerQueueStats> {
        (0..self.shards.len())
            .map(|i| WorkerQueueStats {
                steals: self.worker_steals[i].load(Ordering::Relaxed),
                fail_scans: self.worker_fail_scans[i].load(Ordering::Relaxed),
                queue_depth_hw: self.depth_hw[i].load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &BatchQueue, me: usize) -> Vec<Range<u64>> {
        std::iter::from_fn(|| q.pop(me)).collect()
    }

    #[test]
    fn splits_range_into_batches() {
        let q = BatchQueue::new(0..10, 4, 1, Placement::Interleaved);
        assert_eq!(drain_all(&q, 0), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn interleaved_placement_keeps_workers_in_lockstep() {
        let q = BatchQueue::new(0..8, 2, 2, Placement::Interleaved);
        // Batches alternate across shards, so front-of-queue indices are
        // adjacent — the property that bounds the reorder buffer.
        assert_eq!(q.pop(0), Some(0..2));
        assert_eq!(q.pop(1), Some(2..4));
        assert_eq!(q.pop(0), Some(4..6));
        assert_eq!(q.pop(1), Some(6..8));
    }

    #[test]
    fn shallow_steal_takes_one_batch_from_the_back() {
        // 3 batches < DEEP_SHARD: the thief takes exactly the last batch.
        let q = BatchQueue::new(0..6, 2, 3, Placement::Packed);
        assert_eq!(q.pop(2), Some(4..6));
        assert_eq!(q.steals(), 1);
        // Owner still drains front-to-back.
        assert_eq!(q.pop(0), Some(0..2));
    }

    #[test]
    fn deep_victim_surrenders_half_its_deque() {
        // Shard 0 holds 6 batches (≥ DEEP_SHARD): worker 2's steal moves
        // the whole back half {6..8, 8..10, 10..12} in one lock — it runs
        // 6..8 now and keeps the rest queued locally, in index order.
        let q = BatchQueue::new(0..12, 2, 3, Placement::Packed);
        assert_eq!(q.pop(2), Some(6..8));
        assert_eq!(q.steals(), 1);
        assert_eq!(q.pop(2), Some(8..10));
        assert_eq!(q.pop(2), Some(10..12));
        // Draining its own (stolen) shard costs no further steals.
        assert_eq!(q.steals(), 1);
        // The victim keeps its front half untouched.
        assert_eq!(q.pop(0), Some(0..2));
        assert_eq!(q.pop(0), Some(2..4));
        assert_eq!(q.pop(0), Some(4..6));
        // Worker 2's next pop steals again (from whoever still has work).
        assert_eq!(q.pop(2), None);
    }

    #[test]
    fn skewed_workload_rebalances_in_logarithmically_many_steals() {
        // All 64 batches packed on shard 0 (maximal skew): a lone thief
        // draining the queue alternately with the owner needs far fewer
        // steals than batches, because each steal moves half the remainder.
        let q = BatchQueue::new(0..64, 1, 2, Placement::Packed);
        let mut seen = Vec::new();
        let mut turn = 0;
        loop {
            let me = turn % 2;
            turn += 1;
            match q.pop(me) {
                Some(b) => seen.push(b.start),
                None => break,
            }
        }
        // Every batch ran exactly once…
        seen.sort_unstable();
        assert_eq!(seen, (0..64).collect::<Vec<_>>());
        // …with halving steals, not one per batch.
        assert!(
            q.steals() <= 10,
            "expected O(log) steals, got {}",
            q.steals()
        );
        assert!(q.steals() >= 2);
    }

    #[test]
    fn exhaustion_returns_none_for_everyone() {
        let q = BatchQueue::new(0..3, 1, 2, Placement::Interleaved);
        let mut got = Vec::new();
        for me in [0, 1, 0, 1, 0, 1] {
            if let Some(b) = q.pop(me) {
                got.push(b);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn empty_range_yields_no_batches() {
        let q = BatchQueue::new(5..5, 3, 2, Placement::Interleaved);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.steals(), 0);
    }
}
