//! The sharded batch queue behind the runner.
//!
//! Work is a contiguous range of run indices `[0, runs)`, pre-split into
//! *batches* (sub-ranges). Each worker owns one shard — a mutex-protected
//! deque of batches — and drains it front-to-back, so a worker processes its
//! own work in ascending index order (which keeps the reduction's reorder
//! buffer small). A worker whose shard runs dry *steals* from the back of
//! the currently fullest shard: the back holds the victim's furthest-future
//! indices, the work it would otherwise reach last.
//!
//! Mutex-sharded deques (rather than lock-free Chase–Lev deques) are a
//! deliberate simplicity/portability trade-off: batches are sized by
//! calibration to amortize dispatch (~milliseconds of simulation each), so
//! queue operations are micro-contended and far off the critical path.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How the initial batches are dealt across shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Placement {
    /// Deal batches round-robin (batch `j` to shard `j mod shards`), so
    /// workers draining their shards front-to-back advance through the
    /// index space roughly in lockstep. This keeps the reducer's reorder
    /// buffer near O(threads · batch): a contiguous block-per-worker split
    /// would make index order wait on worker 0's whole block while the
    /// other workers' results pile up. The default.
    #[default]
    Interleaved,
    /// Give *all* batches to shard 0. Every other worker can only make
    /// progress by stealing — a scheduling stress mode used to exercise
    /// steal interleavings in tests.
    Packed,
}

/// A sharded queue of index-range batches with steal-on-empty.
pub struct BatchQueue {
    shards: Vec<Mutex<VecDeque<Range<u64>>>>,
    steals: AtomicU64,
}

impl BatchQueue {
    /// Split `work` into batches of `batch` indices (the last one may be
    /// short) and deal them across `shards` shards.
    pub fn new(work: Range<u64>, batch: u64, shards: usize, placement: Placement) -> Self {
        assert!(batch > 0, "batch size must be positive");
        assert!(shards > 0, "need at least one shard");
        let mut batches = Vec::new();
        let mut start = work.start;
        while start < work.end {
            let end = work.end.min(start + batch);
            batches.push(start..end);
            start = end;
        }
        let mut queues: Vec<VecDeque<Range<u64>>> = (0..shards).map(|_| VecDeque::new()).collect();
        match placement {
            Placement::Interleaved => {
                for (j, b) in batches.into_iter().enumerate() {
                    queues[j % shards].push_back(b);
                }
            }
            Placement::Packed => queues[0].extend(batches),
        }
        BatchQueue {
            shards: queues.into_iter().map(Mutex::new).collect(),
            steals: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Pop the next batch for worker `me`: the front of its own shard, or —
    /// when that is empty — the back of the fullest other shard. `None`
    /// means no work is left anywhere (workers then exit; batches are never
    /// re-queued, so a `None` is final).
    pub fn pop(&self, me: usize) -> Option<Range<u64>> {
        if let Some(b) = self.shards[me].lock().unwrap().pop_front() {
            return Some(b);
        }
        // Steal from the shard with the most remaining batches.
        loop {
            let victim = self
                .shards
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != me)
                .map(|(i, s)| (s.lock().unwrap().len(), i))
                .max()?;
            let (len, idx) = victim;
            if len == 0 {
                return None;
            }
            if let Some(b) = self.shards[idx].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(b);
            }
            // The victim drained between the scan and the lock; rescan.
        }
    }

    /// Number of successful steals so far.
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &BatchQueue, me: usize) -> Vec<Range<u64>> {
        std::iter::from_fn(|| q.pop(me)).collect()
    }

    #[test]
    fn splits_range_into_batches() {
        let q = BatchQueue::new(0..10, 4, 1, Placement::Interleaved);
        assert_eq!(drain_all(&q, 0), vec![0..4, 4..8, 8..10]);
    }

    #[test]
    fn interleaved_placement_keeps_workers_in_lockstep() {
        let q = BatchQueue::new(0..8, 2, 2, Placement::Interleaved);
        // Batches alternate across shards, so front-of-queue indices are
        // adjacent — the property that bounds the reorder buffer.
        assert_eq!(q.pop(0), Some(0..2));
        assert_eq!(q.pop(1), Some(2..4));
        assert_eq!(q.pop(0), Some(4..6));
        assert_eq!(q.pop(1), Some(6..8));
    }

    #[test]
    fn steal_takes_from_the_back_of_the_fullest_shard() {
        let q = BatchQueue::new(0..12, 2, 3, Placement::Packed);
        // Shard 0 holds everything; worker 2 must steal the *last* batch.
        assert_eq!(q.pop(2), Some(10..12));
        assert_eq!(q.steals(), 1);
        // Owner still drains front-to-back.
        assert_eq!(q.pop(0), Some(0..2));
    }

    #[test]
    fn exhaustion_returns_none_for_everyone() {
        let q = BatchQueue::new(0..3, 1, 2, Placement::Interleaved);
        let mut got = Vec::new();
        for me in [0, 1, 0, 1, 0, 1] {
            if let Some(b) = q.pop(me) {
                got.push(b);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn empty_range_yields_no_batches() {
        let q = BatchQueue::new(5..5, 3, 2, Placement::Interleaved);
        assert_eq!(q.pop(0), None);
        assert_eq!(q.steals(), 0);
    }
}
