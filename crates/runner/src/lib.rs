//! # wakeup-runner — work-stealing ensemble execution with deterministic
//! streaming aggregation
//!
//! The sparse simulation engine made single protocol runs cheap enough that
//! *scheduling*, not simulation, dominates ensemble wall-clock: static
//! chunk-per-thread scheduling strands whole chunks of expensive runs on one
//! thread while the others idle. This crate replaces it with a small,
//! dependency-free execution subsystem:
//!
//! * **Sharded job queue** ([`queue`]): run indices `[0, runs)` are split
//!   into contiguous *batches*; each worker drains its own deque
//!   front-to-back and steals from the back of the fullest shard when dry.
//!   Batch size is auto-tuned by a short calibration pass so that dispatch
//!   and channel traffic amortize even when one sparse run costs
//!   microseconds.
//! * **Deterministic streaming reduction** ([`collect`]): workers ship
//!   completed batches to the caller's thread, where a reorder buffer
//!   replays them into a [`Collector`] **strictly in run-index order**.
//!   Output is therefore bit-identical across thread counts and steal
//!   interleavings — including floating-point folds. An admission window
//!   (workers pause before executing batches more than `32·threads`
//!   batches past the fold frontier) hard-bounds the reorder buffer, so
//!   memory stays O(threads·batch) even when one slow batch stalls the
//!   frontier — never O(runs).
//! * **Throughput reporting** ([`progress`]): optional live `runs/s` lines
//!   for long sweeps, delivered through a pluggable [`ProgressSink`]
//!   (stderr by default — experiment drivers route them through their
//!   output sink), plus a [`RunStats`] summary (elapsed, batches, steals,
//!   per-worker run counts) on every run.
//!
//! ```
//! use wakeup_runner::{collect::from_fn, OnlineStats, Runner};
//!
//! let mut stats = OnlineStats::new();
//! let rs = Runner::new().with_threads(4).run(
//!     1000,
//!     |i| (i as f64).sqrt(),       // any Fn(u64) -> T + Sync
//!     from_fn(|_i, x: f64| stats.push(x)),
//! );
//! assert_eq!(stats.count(), 1000);
//! assert_eq!(rs.runs, 1000);
//! ```
//!
//! Structured accumulators ([`OnlineStats`], [`P2Quantile`],
//! [`VecCollector`]) and custom [`Collector`] implementations plug in the
//! same way — pass them by `&mut` to keep ownership.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod progress;
pub mod queue;

pub use collect::{Collector, OnlineStats, P2Quantile, VecCollector};
pub use progress::{Progress, ProgressSink, StderrProgress};
pub use queue::{Placement, WorkerQueueStats};

use progress::ProgressMeter;
use queue::BatchQueue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How batch sizes are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Time a few leading runs inline, then size batches to roughly the
    /// given wall-clock target each (the default, 2 ms). Cheap sparse runs
    /// get large batches; expensive runs get small ones.
    Auto(Duration),
    /// A fixed number of runs per batch (clamped to ≥ 1). `Fixed(1)`
    /// maximizes steal interleavings — useful in scheduling tests.
    Fixed(u64),
}

impl Default for BatchSize {
    fn default() -> Self {
        BatchSize::Auto(Duration::from_millis(2))
    }
}

/// Leading runs executed inline to calibrate [`BatchSize::Auto`].
const CALIBRATION_RUNS: u64 = 4;

/// Per-worker execution breakdown: runs executed plus the worker's
/// scheduling counters from the sharded queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Runs executed by this worker in the parallel phase.
    pub runs: u64,
    /// Successful steals performed by this worker.
    pub steals: u64,
    /// Steal scans that found nothing to take.
    pub fail_scans: u64,
    /// High-water batch depth of this worker's own shard.
    pub queue_depth_hw: u64,
}

/// Scoped monotonic phase timers of one [`Runner::run`]. All three are
/// wall-clock durations measured on the calling thread; `reduction` is
/// cumulative time *inside* the caller's fold/collector code, so
/// `simulation − reduction` approximates how long the reducer merely waited
/// on workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Setup: batch-size calibration (including its inline runs) and queue
    /// construction, before the parallel phase starts.
    pub construction: Duration,
    /// The execution phase: from first dispatched batch until every batch
    /// is folded (workers joined / inline loop done).
    pub simulation: Duration,
    /// Cumulative time spent replaying batch payloads into the caller's
    /// collector, on this thread (a subset of `simulation`).
    pub reduction: Duration,
}

/// Execution statistics of one [`Runner::run`].
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Total runs executed (calibration included).
    pub runs: u64,
    /// Worker threads used for the parallel phase (1 ⇒ ran inline).
    pub threads: usize,
    /// Batch size used for the parallel phase.
    pub batch: u64,
    /// Number of batches dispatched (excluding calibration).
    pub batches: u64,
    /// Number of successful steals.
    pub steals: u64,
    /// Runs executed inline for batch-size calibration.
    pub calibration_runs: u64,
    /// Runs executed by each worker in the parallel phase.
    pub worker_runs: Vec<u64>,
    /// Per-worker breakdown (runs, steals, fail scans, queue depth
    /// high-water); aligned with `worker_runs`.
    pub workers: Vec<WorkerStats>,
    /// High-water occupancy (in batches) of the reducer's reorder buffer.
    pub reorder_peak: u64,
    /// Construction / simulation / reduction phase timers.
    pub phases: PhaseTimes,
    /// Wall-clock duration of the whole call.
    pub elapsed: Duration,
}

impl RunStats {
    /// Overall throughput in runs per second.
    pub fn runs_per_sec(&self) -> f64 {
        self.runs as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Compact one-line rendering (for experiment footers and logs).
    pub fn render(&self) -> String {
        format!(
            "{} runs in {:.2?} ({:.0} runs/s) | {} threads, batch {}, {} batches, {} steals",
            self.runs,
            self.elapsed,
            self.runs_per_sec(),
            self.threads,
            self.batch,
            self.batches,
            self.steals
        )
    }

    /// One-line phase breakdown (construction / simulation / reduction,
    /// plus the reorder-buffer high-water).
    pub fn render_phases(&self) -> String {
        format!(
            "phases: construction {:.2?} | simulation {:.2?} | reduction {:.2?} | reorder peak {} batches",
            self.phases.construction, self.phases.simulation, self.phases.reduction, self.reorder_peak
        )
    }

    /// Multi-line per-worker breakdown, one `worker i: …` line each (empty
    /// string when no per-worker data was collected).
    pub fn render_workers(&self) -> String {
        self.workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "worker {i}: {} runs, {} steals, {} fail-scans, depth hw {}",
                    w.runs, w.steals, w.fail_scans, w.queue_depth_hw
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The work-stealing ensemble runner. Cheap to build; configuration is
/// plain data and a `Runner` can be reused across calls.
#[derive(Clone, Debug, Default)]
pub struct Runner {
    threads: Option<usize>,
    batch: BatchSize,
    placement: Placement,
    progress: Option<Progress>,
}

impl Runner {
    /// A runner with defaults: available parallelism, auto-tuned batches,
    /// interleaved placement, no progress output.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Use `threads` workers. Zero is clamped to one — a directly
    /// constructed "no threads" request still runs (inline).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Choose the batch-size policy.
    pub fn with_batch(mut self, batch: BatchSize) -> Self {
        self.batch = batch;
        self
    }

    /// Choose the initial batch placement ([`Placement::Packed`] forces
    /// every non-zero worker to steal — a scheduling stress mode).
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Enable live progress reporting.
    pub fn with_progress(mut self, progress: Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    fn resolved_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            })
            .max(1)
    }

    /// Execute `job(i)` for every `i ∈ [0, runs)` across the worker pool and
    /// fold the results into `collector` **in index order** (see
    /// [`collect`] for the determinism contract). Returns execution
    /// statistics.
    ///
    /// `job` must be pure up to its index argument: it is called exactly
    /// once per index, on an unspecified thread.
    pub fn run<T, J, C>(&self, runs: u64, job: J, mut collector: C) -> RunStats
    where
        T: Send,
        J: Fn(u64) -> T + Sync,
        C: Collector<Item = T>,
    {
        self.run_batched(
            runs,
            |range| range.map(&job).collect::<Vec<T>>(),
            |start, items| {
                for (off, item) in items.into_iter().enumerate() {
                    collector.collect(start + off as u64, item);
                }
            },
        )
    }

    /// Like [`run`](Self::run), but each worker **pre-folds** its batch into
    /// one partial aggregate `A` before shipping: `zero()` seeds the batch
    /// partial and `fold(&mut a, i, job(i))` absorbs each run, on the worker
    /// thread. The reducer then hands the partials to `collector` in index
    /// order (one `collect(start, partial)` per batch, `start` the batch's
    /// first run index, batch boundaries unspecified).
    ///
    /// This moves reduction work off the fold thread and shrinks channel
    /// traffic and the reorder buffer from O(batch) items to one partial per
    /// batch — the pipelined path for million-run streaming sweeps.
    ///
    /// **Determinism contract**: aggregates stay bit-identical across thread
    /// counts iff merging per-batch partials in index order is insensitive
    /// to where the batch boundaries fall. Integer sums, counts, minima and
    /// maxima qualify; floating-point accumulations do **not** — keep the
    /// raw observations (or integer encodings) in the partial and replay
    /// them in the collector, where fold order is total again.
    pub fn run_folded<T, A, J, Z, F, C>(
        &self,
        runs: u64,
        job: J,
        zero: Z,
        fold: F,
        mut collector: C,
    ) -> RunStats
    where
        A: Send,
        J: Fn(u64) -> T + Sync,
        Z: Fn() -> A + Sync,
        F: Fn(&mut A, u64, T) + Sync,
        C: Collector<Item = A>,
    {
        self.run_batched(
            runs,
            |range| {
                let mut a = zero();
                for i in range {
                    fold(&mut a, i, job(i));
                }
                a
            },
            |start, partial| collector.collect(start, partial),
        )
    }

    /// The batch-granular core behind [`run`](Self::run) and
    /// [`run_folded`](Self::run_folded): workers turn whole index ranges
    /// into one shipped payload `R` via `make_batch`, and `fold_batch`
    /// replays the payloads on this thread in ascending range order.
    fn run_batched<R, MB, FB>(&self, runs: u64, make_batch: MB, mut fold_batch: FB) -> RunStats
    where
        R: Send,
        MB: Fn(std::ops::Range<u64>) -> R + Sync,
        FB: FnMut(u64, R),
    {
        let started = Instant::now();
        let mut stats = RunStats {
            runs,
            threads: 1,
            ..RunStats::default()
        };
        if runs == 0 {
            stats.elapsed = started.elapsed();
            self.report_done(&stats);
            return stats;
        }
        let mut meter = self.progress.clone().map(ProgressMeter::new);
        let mut reduction = Duration::ZERO;

        // Calibration / batch-size choice. Calibration runs are real runs:
        // they execute indices 0.. inline (one single-run batch each, so
        // per-run cost is observable) and fold first — order is unaffected.
        let mut next = 0u64;
        let batch = match self.batch {
            BatchSize::Fixed(b) => b.max(1),
            BatchSize::Auto(target) => {
                let calib = CALIBRATION_RUNS.min(runs);
                let t0 = Instant::now();
                while next < calib {
                    let payload = make_batch(next..next + 1);
                    let fold_t0 = Instant::now();
                    fold_batch(next, payload);
                    reduction += fold_t0.elapsed();
                    next += 1;
                    // Small ensembles of expensive runs live entirely in
                    // this loop — keep reporting.
                    if let Some(m) = meter.as_mut() {
                        m.tick(next, runs, 0);
                    }
                }
                stats.calibration_runs = calib;
                let per_run = (t0.elapsed().as_nanos() / u128::from(calib.max(1))).max(1);
                let by_time = (target.as_nanos() / per_run).clamp(1, u64::MAX as u128) as u64;
                // Keep enough batches around for stealing to balance load:
                // at least ~8 per worker when the workload allows it.
                let threads = self.resolved_threads() as u64;
                let for_balance = ((runs - next) / (threads * 8)).max(1);
                by_time.min(for_balance)
            }
        };
        stats.batch = batch;

        let remaining = next..runs;
        let threads = self
            .resolved_threads()
            .min(usize::try_from(remaining.end - remaining.start).unwrap_or(usize::MAX))
            .max(1);
        stats.threads = threads;

        if threads == 1 {
            // Inline fast path: no workers, no channel, same fold order.
            stats.phases.construction = started.elapsed();
            let sim_t0 = Instant::now();
            let mut i = remaining.start;
            while i < remaining.end {
                let end = remaining.end.min(i + batch);
                let payload = make_batch(i..end);
                let fold_t0 = Instant::now();
                fold_batch(i, payload);
                reduction += fold_t0.elapsed();
                i = end;
                if let Some(m) = meter.as_mut() {
                    m.tick(i, runs, 0);
                }
            }
            stats.batches = runs.saturating_sub(next).div_ceil(batch);
            stats.worker_runs = vec![runs - next];
            stats.workers = vec![WorkerStats {
                runs: runs - next,
                ..WorkerStats::default()
            }];
            stats.phases.simulation = sim_t0.elapsed();
            stats.phases.reduction = reduction;
            stats.elapsed = started.elapsed();
            self.report_done(&stats);
            return stats;
        }

        let queue = BatchQueue::new(remaining.clone(), batch, threads, self.placement);
        stats.batches = (remaining.end - remaining.start).div_ceil(batch);
        stats.phases.construction = started.elapsed();
        let sim_t0 = Instant::now();
        let mut reorder_peak = 0u64;
        let done = AtomicU64::new(next);
        let worker_runs: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        let (tx, rx) = mpsc::channel::<(u64, u64, R)>();

        // Admission window: workers may not *execute* a batch starting more
        // than `window` indices past the reducer's fold frontier. This is
        // the hard memory bound on the reorder buffer — without it, one
        // pathologically slow batch would stall the frontier while every
        // other worker drains the whole range into `pending` (O(runs)
        // digests). Deadlock-free: a parked worker holds a batch beyond the
        // window, so every batch at or below the window is either running
        // on some worker, queued in a shard whose owner will reach it
        // front-to-back, or already folded — the frontier therefore keeps
        // advancing and wakes the parked workers.
        let frontier = AtomicU64::new(next);
        let window = batch.saturating_mul(32 * threads as u64);
        // Set when any worker unwinds: a dead worker's batch never folds,
        // so the frontier would freeze and parked workers would sleep
        // forever waiting on it. The flag lets them bail out instead; the
        // scope then re-raises the original panic.
        let poisoned = AtomicBool::new(false);

        /// Sets the flag from `Drop` iff the thread is unwinding.
        struct PanicFlag<'a>(&'a AtomicBool);
        impl Drop for PanicFlag<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.store(true, Ordering::Release);
                }
            }
        }

        std::thread::scope(|scope| {
            for (me, my_runs) in worker_runs.iter().enumerate() {
                let tx = tx.clone();
                let queue = &queue;
                let make_batch = &make_batch;
                let done = &done;
                let frontier = &frontier;
                let poisoned = &poisoned;
                scope.spawn(move || {
                    let _flag = PanicFlag(poisoned);
                    while let Some(range) = queue.pop(me) {
                        while range.start > frontier.load(Ordering::Acquire).saturating_add(window)
                        {
                            if poisoned.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        let start = range.start;
                        let count = range.end - range.start;
                        let payload = make_batch(range);
                        done.fetch_add(count, Ordering::Relaxed);
                        my_runs.fetch_add(count, Ordering::Relaxed);
                        if tx.send((start, count, payload)).is_err() {
                            return; // reducer gone (panic unwinding)
                        }
                    }
                });
            }
            drop(tx);

            // The reducer can panic too (the collector is caller code, and
            // it runs here). Parked workers watch `poisoned`, so the same
            // guard must cover this thread's unwind — otherwise the scope
            // would block forever joining a worker parked on a frontier
            // that can no longer advance.
            let _reducer_flag = PanicFlag(&poisoned);

            // Reduce on this thread: replay batch payloads in index order.
            let mut pending: BTreeMap<u64, (u64, R)> = BTreeMap::new();
            let mut expected = next;
            while expected < runs {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok((start, count, payload)) => {
                        pending.insert(start, (count, payload));
                        reorder_peak = reorder_peak.max(pending.len() as u64);
                        let fold_t0 = Instant::now();
                        while let Some((count, payload)) = pending.remove(&expected) {
                            fold_batch(expected, payload);
                            expected += count;
                        }
                        reduction += fold_t0.elapsed();
                        frontier.store(expected, Ordering::Release);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
                if let Some(m) = meter.as_mut() {
                    m.tick(done.load(Ordering::Relaxed), runs, queue.steals());
                }
            }
        });

        stats.phases.simulation = sim_t0.elapsed();
        stats.phases.reduction = reduction;
        stats.reorder_peak = reorder_peak;
        stats.steals = queue.steals();
        stats.worker_runs = worker_runs.into_iter().map(|c| c.into_inner()).collect();
        stats.workers = queue
            .worker_stats()
            .into_iter()
            .zip(stats.worker_runs.iter())
            .map(|(q, &runs)| WorkerStats {
                runs,
                steals: q.steals,
                fail_scans: q.fail_scans,
                queue_depth_hw: q.queue_depth_hw,
            })
            .collect();
        stats.elapsed = started.elapsed();
        self.report_done(&stats);
        stats
    }

    /// Final progress lines for runs with progress enabled. The first line
    /// is the guaranteed 100 % meter line (sweeps faster than the meter's
    /// `every` interval never tick the throttled meter, so completion is
    /// reported here unconditionally); then the [`RunStats::render`]
    /// summary, the phase timers, and the per-worker breakdown.
    fn report_done(&self, stats: &RunStats) {
        if let Some(p) = &self.progress {
            p.emit(&format!(
                "[{}] {}/{} runs (100.0%) | {:.0} runs/s | {} steals",
                p.label,
                stats.runs,
                stats.runs,
                stats.runs_per_sec(),
                stats.steals
            ));
            p.emit(&format!("[{}] {}", p.label, stats.render_phases()));
            for line in stats.render_workers().lines() {
                p.emit(&format!("[{}] {line}", p.label));
            }
            p.emit(&format!("[{}] done: {}", p.label, stats.render()));
        }
    }

    /// Convenience: run `job` over `[0, runs)` and return the results as a
    /// `Vec` in index order.
    pub fn map<T, J>(&self, runs: u64, job: J) -> (Vec<T>, RunStats)
    where
        T: Send,
        J: Fn(u64) -> T + Sync,
    {
        let mut out = VecCollector::with_capacity(usize::try_from(runs).unwrap_or(0));
        let stats = self.run(runs, job, &mut out);
        (out.items, stats)
    }
}
