//! The fixture corpus and the workspace self-check: every bad fixture fires
//! exactly its rule, the clean fixture fires nothing, the schema-drift trio
//! trips `trace-schema-sync`, the real workspace has zero deny findings,
//! and the JSON report is byte-identical across runs.

use std::path::{Path, PathBuf};
use wakeup_lint::rules::Tier;
use wakeup_lint::{lint_file, lint_workspace, report, schema};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn workspace() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn each_bad_fixture_fires_exactly_its_rule() {
    // (fixture file, virtual workspace path it pretends to live at, rule)
    let cases = [
        (
            "default_hash_state.rs",
            "crates/mac-sim/src/bad.rs",
            "default-hash-state",
        ),
        ("wall_clock.rs", "crates/core/src/bad.rs", "wall-clock"),
        (
            "ambient_rng.rs",
            "crates/selectors/src/bad.rs",
            "ambient-rng",
        ),
        (
            "unsafe_needs_safety.rs",
            "crates/mac-sim/src/bad.rs",
            "unsafe-needs-safety",
        ),
        (
            "sink_discipline.rs",
            "crates/core/src/bad.rs",
            "sink-discipline",
        ),
        (
            "env_discipline.rs",
            "crates/core/src/bad.rs",
            "env-discipline",
        ),
        ("layering.rs", "crates/selectors/src/bad.rs", "layering"),
        (
            "panic_free_hot_path.rs",
            "crates/mac-sim/src/engine.rs",
            "panic-free-hot-path",
        ),
        ("lint_pragma.rs", "crates/core/src/bad.rs", "lint-pragma"),
    ];
    for (file, rel, rule) in cases {
        let out = lint_file(rel, &fixture(file));
        assert!(
            !out.findings.is_empty(),
            "{file}: expected at least one {rule} finding"
        );
        for f in &out.findings {
            assert_eq!(
                f.rule, rule,
                "{file}: stray finding {f:?} — each fixture must fire exactly one rule"
            );
        }
    }
}

#[test]
fn clean_fixture_fires_nothing_and_counts_its_suppression() {
    let out = lint_file("crates/core/src/clean.rs", &fixture("clean.rs"));
    assert!(out.findings.is_empty(), "unexpected: {:?}", out.findings);
    assert_eq!(out.suppressed, 1, "the reasoned pragma suppresses one site");
}

#[test]
fn schema_drift_trio_fires_trace_schema_sync() {
    let bad = schema::check(
        &fixture_dir().join("schema_bad"),
        "tracer.rs",
        "README.md",
        "ci.yml",
    );
    assert!(
        bad.len() >= 3,
        "expected kind+field drift findings, got {bad:?}"
    );
    for f in &bad {
        assert_eq!(f.rule, "trace-schema-sync", "stray finding {f:?}");
    }
    // Kind drift is caught in both directions, and field drift is named.
    assert!(
        bad.iter().any(|f| f.message.contains("`run_end`")),
        "{bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.message.contains("`collision`")),
        "{bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.message.contains("field drift")),
        "{bad:?}"
    );

    let good = schema::check(
        &fixture_dir().join("schema_good"),
        "tracer.rs",
        "README.md",
        "ci.yml",
    );
    assert!(good.is_empty(), "consistent trio must be clean: {good:?}");
}

#[test]
fn workspace_has_zero_deny_findings() {
    let report = lint_workspace(&workspace()).expect("lint workspace");
    let deny: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.tier == Tier::Deny)
        .collect();
    assert!(
        deny.is_empty(),
        "the tree must lint clean at deny tier:\n{:#?}",
        deny
    );
}

#[test]
fn workspace_json_report_is_byte_identical_across_runs() {
    let root = workspace();
    let a = report::render_json(&lint_workspace(&root).expect("first run"));
    let b = report::render_json(&lint_workspace(&root).expect("second run"));
    assert!(!a.is_empty());
    assert_eq!(a, b, "lint output must be byte-deterministic");
}
