// Fixture: fires exactly `panic-free-hot-path` (warn tier) when linted as
// crates/mac-sim/src/engine.rs — slice indexing in the hot path.

pub fn head(v: &[u64]) -> u64 {
    v[0]
}
