// Fixture: fires exactly `sink-discipline` when linted as
// crates/core/src/bad.rs — library code printing straight to stdout.

pub fn report(x: u64) {
    println!("x = {x}");
}
