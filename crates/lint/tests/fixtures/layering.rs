// Fixture: fires exactly `layering` when linted as
// crates/selectors/src/bad.rs — selectors sits below mac-sim in the DAG.

use mac_sim::Slot;

pub fn first() -> Slot {
    0
}
