// Fixture: fires exactly `wall-clock` when linted as
// crates/core/src/bad.rs (deterministic tier, library source).

pub fn elapsed_ns() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
