impl TraceKind {
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Wake => "wake",
            TraceKind::RunEnd => "run_end",
        }
    }
}

impl TraceEvent {
    pub fn json_fields(&self, s: &mut String) {
        match self {
            TraceEvent::Wake { slot, stations } => {
                let _ = write!(s, ",\"slot\":{slot},\"stations\":{stations}");
            }
            TraceEvent::RunEnd { slots } => {
                let _ = write!(s, ",\"slots\":{slots}");
            }
        }
    }
}
