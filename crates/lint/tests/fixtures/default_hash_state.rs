// Fixture: fires exactly `default-hash-state` when linted as
// crates/mac-sim/src/bad.rs (deterministic tier, library source).

pub fn tally(keys: &[u32]) -> usize {
    let mut m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for &k in keys {
        m.entry(k).or_insert(0);
    }
    m.len()
}
