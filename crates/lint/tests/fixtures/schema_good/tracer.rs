pub enum TraceKind {
    Wake,
    RunEnd,
}

impl TraceKind {
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Wake => "wake",
            TraceKind::RunEnd => "run_end",
        }
    }
}

impl TraceEvent {
    pub fn json_fields(&self, s: &mut String) {
        match self {
            TraceEvent::Wake { slot, stations } => {
                let _ = write!(s, ",\"slot\":{slot},\"stations\":{stations}");
            }
            TraceEvent::RunEnd { slots, first_success } => {
                let _ = write!(s, ",\"slots\":{slots},\"first_success\":{first_success}");
            }
        }
    }
}
