// Fixture: fires exactly `ambient-rng` when linted as
// crates/selectors/src/bad.rs (the compat `rand` dep itself is a legal
// edge for selectors, so layering stays quiet).

pub fn roll() {
    let _rng = rand::thread_rng();
}
