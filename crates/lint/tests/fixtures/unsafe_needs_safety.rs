// Fixture: fires exactly `unsafe-needs-safety` — an unsafe block whose
// obligations are not documented anywhere near it.

pub fn deref(p: *const u8) -> u8 {
    unsafe { *p }
}
