// Fixture: fires exactly `env-discipline` when linted as
// crates/core/src/bad.rs — ambient configuration outside the CLI layer.

pub fn verbose() -> bool {
    std::env::var("WAKEUP_VERBOSE").is_ok()
}
