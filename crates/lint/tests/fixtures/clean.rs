// Fixture: zero findings when linted as crates/core/src/clean.rs — ordered
// maps, no clock, no prints, a SAFETY-documented unsafe and a reasoned
// pragma ("HashMap" and "Instant::now()" in strings/comments are invisible
// to the lexer-based rules, which this file also exercises).

use std::collections::BTreeMap;

/// Not a real Instant::now() — just a doc mention.
pub fn sum(m: &BTreeMap<u32, u64>) -> u64 {
    let label = "HashMap and thread_rng and unsafe live harmlessly in strings";
    let r = r#"so do println!("…") and std::env::var in raw strings"#;
    let _ = (label, r);
    m.values().copied().sum()
}

pub fn read(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer to a live byte (fixture contract).
    unsafe { *p }
}

// lint: allow(default-hash-state) — borrowed lookup-only view, never iterated
pub fn lookup(m: &std::collections::HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
