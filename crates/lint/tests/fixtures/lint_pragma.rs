// Fixture: fires exactly `lint-pragma` — one reason-less pragma and one
// naming a rule that does not exist.

// lint: allow(wall-clock)
pub fn a() {}

// lint: allow(clock-wall) — the rule id is misspelled
pub fn b() {}
