//! Warn-tier baseline ratchet: warn findings don't fail the gate outright —
//! they fail it when they *grow*. The baseline is a committed JSON Lines
//! file of per-`(rule, file)` counts; a run regresses if any count rises or
//! a new `(rule, file)` pair appears, and improves when counts drop (at
//! which point the baseline should be re-written so the ratchet only ever
//! tightens).

use crate::rules::{Finding, Tier};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use wakeup_analysis::serial::{parse_json_object, Record, Value};

/// Warn counts keyed by `(rule, file)` — a `BTreeMap` so rendering is
/// deterministically ordered.
pub type Counts = BTreeMap<(String, String), u64>;

/// Aggregate the warn-tier findings of a run into baseline counts.
pub fn warn_counts(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings.iter().filter(|f| f.tier == Tier::Warn) {
        *counts
            .entry((f.rule.to_string(), f.file.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// Render counts as JSON Lines (`{"rule":…,"file":…,"count":…}` per line).
pub fn render(counts: &Counts) -> String {
    let mut out = String::new();
    for ((rule, file), count) in counts {
        let rec = Record::new()
            .with("rule", rule.as_str())
            .with("file", file.as_str())
            .with("count", *count);
        out.push_str(&rec.to_json());
        out.push('\n');
    }
    out
}

/// Load a baseline file written by [`render`].
pub fn load(path: &Path) -> io::Result<Counts> {
    let text = std::fs::read_to_string(path)?;
    let mut counts = Counts::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = parse_json_object(line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {e}", path.display(), i + 1),
            )
        })?;
        let rule = str_field(&rec, "rule", path, i)?;
        let file = str_field(&rec, "file", path, i)?;
        let count = match rec.get("count") {
            Some(Value::U64(n)) => *n,
            Some(Value::I64(n)) if *n >= 0 => *n as u64,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: missing numeric `count`", path.display(), i + 1),
                ))
            }
        };
        counts.insert((rule, file), count);
    }
    Ok(counts)
}

fn str_field(rec: &Record, name: &str, path: &Path, i: usize) -> io::Result<String> {
    match rec.get(name) {
        Some(Value::Str(s)) => Ok(s.clone()),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}:{}: missing string `{name}`", path.display(), i + 1),
        )),
    }
}

/// The ratchet verdict: what got worse and what got better.
#[derive(Clone, Debug, Default)]
pub struct Diff {
    /// `(rule, file, baseline, current)` where current exceeds baseline
    /// (baseline 0 for new entries). Any regression fails the gate.
    pub regressions: Vec<(String, String, u64, u64)>,
    /// Entries whose count dropped (or vanished) — the baseline can be
    /// re-written tighter.
    pub improvements: Vec<(String, String, u64, u64)>,
}

/// Compare a run's warn counts against the committed baseline.
pub fn diff(current: &Counts, baseline: &Counts) -> Diff {
    let mut d = Diff::default();
    for (key, &cur) in current {
        let base = baseline.get(key).copied().unwrap_or(0);
        if cur > base {
            d.regressions
                .push((key.0.clone(), key.1.clone(), base, cur));
        } else if cur < base {
            d.improvements
                .push((key.0.clone(), key.1.clone(), base, cur));
        }
    }
    for (key, &base) in baseline {
        if !current.contains_key(key) {
            d.improvements.push((key.0.clone(), key.1.clone(), base, 0));
        }
    }
    d.improvements.sort();
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, u64)]) -> Counts {
        entries
            .iter()
            .map(|(r, f, n)| ((r.to_string(), f.to_string()), *n))
            .collect()
    }

    #[test]
    fn ratchet_flags_growth_and_new_entries_only() {
        let base = counts(&[
            ("panic-free-hot-path", "a.rs", 3),
            ("panic-free-hot-path", "b.rs", 1),
        ]);
        let cur = counts(&[
            ("panic-free-hot-path", "a.rs", 4),
            ("panic-free-hot-path", "c.rs", 1),
        ]);
        let d = diff(&cur, &base);
        assert_eq!(d.regressions.len(), 2, "{:?}", d.regressions);
        assert!(d
            .regressions
            .iter()
            .any(|r| r.1 == "a.rs" && r.2 == 3 && r.3 == 4));
        assert!(d
            .regressions
            .iter()
            .any(|r| r.1 == "c.rs" && r.2 == 0 && r.3 == 1));
        assert_eq!(
            d.improvements,
            vec![("panic-free-hot-path".into(), "b.rs".into(), 1, 0)]
        );
        let clean = diff(&base, &base);
        assert!(clean.regressions.is_empty() && clean.improvements.is_empty());
    }

    #[test]
    fn baseline_roundtrips_through_jsonl() {
        let c = counts(&[("panic-free-hot-path", "crates/mac-sim/src/engine.rs", 7)]);
        let text = render(&c);
        assert_eq!(
            text,
            "{\"rule\":\"panic-free-hot-path\",\"file\":\"crates/mac-sim/src/engine.rs\",\"count\":7}\n"
        );
        let dir = std::env::temp_dir().join("wakeup-lint-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.jsonl");
        std::fs::write(&path, &text).unwrap();
        assert_eq!(load(&path).unwrap(), c);
    }
}
