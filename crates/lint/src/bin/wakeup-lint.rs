//! Standalone CI entry point: `wakeup-lint [options]` is exactly
//! `wakeup lint [options]` without building the full CLI crate.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(wakeup_lint::cli::run(&args));
}
