//! Deterministic source discovery: a sorted recursive walk over the
//! workspace's Rust sources. Determinism here is what makes the whole
//! report byte-identical across runs and machines — entries are sorted at
//! every directory level, so the emitted finding order never depends on
//! filesystem iteration order.

use std::io;
use std::path::Path;

/// Directory names never descended into: build outputs, VCS metadata, and
/// the lint crate's own deliberately-bad fixture corpus.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Top-level entry points of a workspace checkout that can hold Rust code.
const ROOTS: &[&str] = &["src", "tests", "examples", "benches", "crates"];

/// Collect every `.rs` file under `root`'s source roots, as sorted
/// workspace-relative paths with forward slashes.
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for r in ROOTS {
        let dir = root.join(r);
        if dir.is_dir() {
            descend(&dir, r, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn descend(dir: &Path, rel: &str, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<(String, bool)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.file_type()?.is_dir();
        entries.push((name, is_dir));
    }
    entries.sort();
    for (name, is_dir) in entries {
        let child_rel = format!("{rel}/{name}");
        if is_dir {
            if !SKIP_DIRS.contains(&name.as_str()) {
                descend(&dir.join(&name), &child_rel, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_walk_is_sorted_and_skips_fixtures() {
        let root = crate::workspace_root().expect("workspace root");
        let files = rust_sources(&root).expect("walk");
        assert!(files.len() > 20, "expected a real workspace, got {files:?}");
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk output must be sorted");
        assert!(files.iter().any(|f| f == "crates/mac-sim/src/engine.rs"));
        assert!(
            !files.iter().any(|f| f.contains("/fixtures/")),
            "fixture corpus must not be walked"
        );
        assert!(!files.iter().any(|f| f.contains("/target/")));
    }
}
