//! The `trace-schema-sync` rule: the trace schema exists in three places —
//! the emitting code (`TraceKind::name` + `TraceEvent::json_fields` in
//! `mac-sim/src/tracer.rs`), the documentation (README §Observability's
//! two-tier table) and the CI python validator (`KINDS = {...}` in the
//! workflow). This rule extracts all three and reports any drift, so the
//! documented schema can never silently diverge from the code.

use crate::lexer::{lex, Tok};
use crate::rules::{Finding, Tier, TRACE_SCHEMA_SYNC};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Extracted view of one schema source: event kinds, and (where the source
/// documents them) the per-kind payload field names.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schema {
    /// Event kind names (`wake`, `collision`, …).
    pub kinds: BTreeSet<String>,
    /// Per-kind payload field names.
    pub fields: BTreeMap<String, BTreeSet<String>>,
}

/// Cross-check the three schema sources under `root`. Returns findings
/// (empty when everything agrees). The paths are parameters so the fixture
/// corpus can exercise deliberate drift.
pub fn check(root: &Path, tracer_rel: &str, readme_rel: &str, ci_rel: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut read = |rel: &str| match std::fs::read_to_string(root.join(rel)) {
        Ok(s) => Some(s),
        Err(e) => {
            findings.push(fail(rel, 1, format!("cannot read schema source: {e}")));
            None
        }
    };
    let (Some(tracer_src), Some(readme_src), Some(ci_src)) =
        (read(tracer_rel), read(readme_rel), read(ci_rel))
    else {
        return findings;
    };

    let code = parse_tracer(&tracer_src);
    let docs = parse_readme(&readme_src);
    let ci = parse_ci(&ci_src);

    if code.kinds.is_empty() {
        findings.push(fail(
            tracer_rel,
            1,
            "could not extract any TraceKind names — has the name() table moved?".into(),
        ));
        return findings;
    }
    if docs.kinds.is_empty() {
        findings.push(fail(
            readme_rel,
            1,
            "could not find the §Observability two-tier schema table".into(),
        ));
        return findings;
    }
    if ci.kinds.is_empty() {
        findings.push(fail(
            ci_rel,
            1,
            "could not find the validator's KINDS = {...} set".into(),
        ));
        return findings;
    }

    // Kind sets must agree pairwise against the code (the single source of
    // truth); the finding is anchored at the artifact that is out of sync.
    for (other, rel, what) in [(&docs, readme_rel, "README"), (&ci, ci_rel, "CI validator")] {
        for k in code.kinds.difference(&other.kinds) {
            findings.push(fail(
                rel,
                find_line(
                    if rel == readme_rel {
                        &readme_src
                    } else {
                        &ci_src
                    },
                    "kinds",
                )
                .unwrap_or(1),
                format!("trace kind `{k}` is emitted by tracer.rs but missing from the {what}"),
            ));
        }
        for k in other.kinds.difference(&code.kinds) {
            findings.push(fail(
                rel,
                find_line(
                    if rel == readme_rel {
                        &readme_src
                    } else {
                        &ci_src
                    },
                    k,
                )
                .unwrap_or(1),
                format!("trace kind `{k}` appears in the {what} but tracer.rs never emits it"),
            ));
        }
    }

    // Field names: README documents them per kind; compare against the
    // fields actually serialized by json_fields().
    for (kind, code_fields) in &code.fields {
        let Some(doc_fields) = docs.fields.get(kind) else {
            continue; // kind-level drift already reported above
        };
        if code_fields != doc_fields {
            let missing: Vec<&str> = code_fields
                .difference(doc_fields)
                .map(String::as_str)
                .collect();
            let stale: Vec<&str> = doc_fields
                .difference(code_fields)
                .map(String::as_str)
                .collect();
            findings.push(fail(
                readme_rel,
                find_line(&readme_src, kind).unwrap_or(1),
                format!(
                    "field drift for `{kind}`: code serializes [{}], README documents [{}]{}{}",
                    join(code_fields),
                    join(doc_fields),
                    if missing.is_empty() {
                        String::new()
                    } else {
                        format!("; undocumented: {}", missing.join(", "))
                    },
                    if stale.is_empty() {
                        String::new()
                    } else {
                        format!("; stale: {}", stale.join(", "))
                    },
                ),
            ));
        }
    }
    findings
}

fn fail(rel: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: TRACE_SCHEMA_SYNC,
        tier: Tier::Deny,
        file: rel.to_string(),
        line,
        message,
    }
}

fn join(set: &BTreeSet<String>) -> String {
    set.iter().cloned().collect::<Vec<_>>().join(", ")
}

/// 1-based line of the first occurrence of `needle`.
fn find_line(text: &str, needle: &str) -> Option<u32> {
    text.lines()
        .position(|l| l.contains(needle))
        .map(|i| i as u32 + 1)
}

/// `TraceKind::X => "name"` arms give the kind names; the string fragments
/// inside `json_fields` give the per-kind payload fields.
pub fn parse_tracer(src: &str) -> Schema {
    let toks = lex(src).tokens;
    let mut schema = Schema::default();
    let ident = |i: usize| match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    };
    let punct =
        |i: usize, c: char| matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);

    // Kind names from the `TraceKind::X => "str"` match arms.
    for i in 0..toks.len() {
        if ident(i) == Some("TraceKind")
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && ident(i + 3).is_some()
            && punct(i + 4, '=')
            && punct(i + 5, '>')
        {
            if let Some(Tok::Str(s)) = toks.get(i + 6).map(|t| &t.tok) {
                schema.kinds.insert(s.clone());
            }
        }
    }

    // Payload fields from the body of `fn json_fields`.
    let Some(start) = (0..toks.len()).find(|&i| ident(i) == Some("json_fields")) else {
        return schema;
    };
    let mut depth = 0i32;
    let mut entered = false;
    let mut current: Option<String> = None;
    for (i, t) in toks.iter().enumerate().skip(start) {
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                entered = true;
            }
            Tok::Punct('}') => {
                depth -= 1;
                if entered && depth == 0 {
                    break;
                }
            }
            Tok::Ident(id) if id == "TraceEvent" && punct(i + 1, ':') && punct(i + 2, ':') => {
                if let Some(variant) = ident(i + 3) {
                    current = Some(snake_case(variant));
                    schema.fields.entry(snake_case(variant)).or_default();
                }
            }
            Tok::Str(s) => {
                if let Some(kind) = &current {
                    let entry = schema.fields.entry(kind.clone()).or_default();
                    for f in field_names_in(s) {
                        entry.insert(f);
                    }
                }
            }
            _ => {}
        }
    }
    schema
}

/// Extract `"name":` occurrences from a (unescaped) format-string fragment.
fn field_names_in(s: &str) -> Vec<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(end) = s[i + 1..].find('"') {
                let name = &s[i + 1..i + 1 + end];
                let after = i + 1 + end + 1;
                if bytes.get(after) == Some(&b':')
                    && !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit())
                {
                    out.push(name.to_string());
                }
                i = after;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn snake_case(camel: &str) -> String {
    let mut out = String::new();
    for (i, c) in camel.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// The README's two-tier table: rows are `| tier | kinds | fields |`; kind
/// and field cells pair multi-kind rows by `/` position
/// (``…`burst_open` / `burst_close`…`` ↔ ``…`slot`, `window` / `slot`…``).
pub fn parse_readme(src: &str) -> Schema {
    let mut schema = Schema::default();
    let mut in_table = false;
    for line in src.lines() {
        if !in_table {
            let l = line.to_lowercase();
            if l.starts_with('|')
                && l.contains("tier")
                && l.contains("kinds")
                && l.contains("fields")
            {
                in_table = true;
            }
            continue;
        }
        if !line.trim_start().starts_with('|') {
            break;
        }
        let cells: Vec<&str> = line.split('|').collect();
        if cells.len() < 4 {
            continue;
        }
        let kind_segs: Vec<Vec<String>> = cells[2].split('/').map(backticked).collect();
        let field_segs: Vec<Vec<String>> = cells[3].split('/').map(backticked).collect();
        let kinds_in_row: usize = kind_segs.iter().map(Vec::len).sum();
        if kinds_in_row == 0 {
            continue; // separator / prose rows
        }
        if kind_segs.len() == field_segs.len() {
            for (ks, fs) in kind_segs.iter().zip(&field_segs) {
                for k in ks {
                    schema.kinds.insert(k.clone());
                    schema
                        .fields
                        .entry(k.clone())
                        .or_default()
                        .extend(fs.iter().cloned());
                }
            }
        } else {
            // Unpaired: attribute every documented field to every kind.
            let all: Vec<String> = field_segs.into_iter().flatten().collect();
            for k in kind_segs.into_iter().flatten() {
                schema.kinds.insert(k.clone());
                schema
                    .fields
                    .entry(k)
                    .or_default()
                    .extend(all.iter().cloned());
            }
        }
    }
    schema
}

/// Backticked identifiers in a table cell, excluding the `null` literal
/// (documented as a field *value*, not a field).
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(open) = rest.find('`') {
        let Some(close) = rest[open + 1..].find('`') else {
            break;
        };
        let name = &rest[open + 1..open + 1 + close];
        if !name.is_empty()
            && name != "null"
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit())
        {
            out.push(name.to_string());
        }
        rest = &rest[open + 1 + close + 1..];
    }
    out
}

/// The CI validator's `KINDS = {...}` set (python string literals).
pub fn parse_ci(src: &str) -> Schema {
    let mut schema = Schema::default();
    let Some(start) = src.find("KINDS") else {
        return schema;
    };
    let Some(open) = src[start..].find('{') else {
        return schema;
    };
    let Some(close) = src[start + open..].find('}') else {
        return schema;
    };
    let body = &src[start + open + 1..start + open + close];
    let mut rest = body;
    while let Some(q) = rest.find('\'') {
        let Some(end) = rest[q + 1..].find('\'') else {
            break;
        };
        schema.kinds.insert(rest[q + 1..q + 1 + end].to_string());
        rest = &rest[q + 1 + end + 1..];
    }
    schema
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACER: &str = r#"
        impl TraceKind {
            pub fn name(self) -> &'static str {
                match self {
                    TraceKind::Wake => "wake",
                    TraceKind::RunEnd => "run_end",
                }
            }
        }
        impl TraceEvent {
            pub fn json_fields(&self) -> String {
                match self {
                    TraceEvent::Wake { slot, stations } => {
                        let _ = write!(s, ",\"slot\":{slot},\"stations\":{stations}");
                    }
                    TraceEvent::RunEnd { slots, first_success } => {
                        let _ = write!(s, ",\"slots\":{slots},\"first_success\":");
                    }
                }
            }
        }
    "#;

    #[test]
    fn tracer_extraction_finds_kinds_and_fields() {
        let s = parse_tracer(TRACER);
        assert_eq!(
            s.kinds.iter().cloned().collect::<Vec<_>>(),
            vec!["run_end", "wake"]
        );
        assert_eq!(
            s.fields["wake"].iter().cloned().collect::<Vec<_>>(),
            vec!["slot", "stations"]
        );
        assert_eq!(
            s.fields["run_end"].iter().cloned().collect::<Vec<_>>(),
            vec!["first_success", "slots"]
        );
    }

    #[test]
    fn readme_table_parses_paired_rows() {
        let md = "\
            | tier | kinds | fields |\n\
            |------|-------|--------|\n\
            | det | `wake` | `slot`, `stations` |\n\
            | | `run_end` | `slots`, `first_success` (`null` when censored) |\n\
            | eng | `burst_open` / `burst_close` | `slot`, `window` / `slot` |\n\
            \n";
        let s = parse_readme(md);
        assert!(s.kinds.contains("wake") && s.kinds.contains("burst_close"));
        assert_eq!(
            s.fields["run_end"].iter().cloned().collect::<Vec<_>>(),
            vec!["first_success", "slots"],
            "the `null` value literal must not parse as a field"
        );
        assert_eq!(
            s.fields["burst_open"].iter().cloned().collect::<Vec<_>>(),
            vec!["slot", "window"]
        );
        assert_eq!(
            s.fields["burst_close"].iter().cloned().collect::<Vec<_>>(),
            vec!["slot"]
        );
    }

    #[test]
    fn ci_kinds_parse_from_python_set() {
        let yml = "KINDS = {'wake', 'silence',\n         'run_end'}\nother";
        let s = parse_ci(yml);
        assert_eq!(s.kinds.len(), 3);
        assert!(s.kinds.contains("silence"));
    }
}
