//! The `wakeup lint` driver, shared between the `wakeup` CLI subcommand and
//! the standalone `wakeup-lint` binary (the CI entry point).
//!
//! Exit codes: `0` clean (no deny findings, warn tier within baseline),
//! `1` gate failure (deny findings or warn-tier regression), `2` usage or
//! I/O error.

use crate::rules::RULES;
use crate::{baseline, report, workspace_root};
use std::path::PathBuf;

const USAGE: &str = "\
usage: wakeup lint [options]

Statically checks the workspace's determinism & architecture invariants.

options:
  --out table|csv|json     output format (default: table)
  --baseline FILE          warn-tier baseline to ratchet against
                           (default: ci/lint-baseline.jsonl if present)
  --write-baseline FILE    write the current warn counts to FILE and use it
  --root DIR               workspace root (default: autodetected)
  --rules                  list the rules and exit
  -h, --help               this help
";

/// Output format for the findings stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Out {
    Table,
    Csv,
    Json,
}

/// Run `wakeup lint` with the given (post-subcommand) arguments; returns
/// the process exit code.
pub fn run(args: &[String]) -> i32 {
    let mut out = Out::Table;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next().map(String::as_str) {
                Some("table") => out = Out::Table,
                Some("csv") => out = Out::Csv,
                Some("json") => out = Out::Json,
                other => {
                    return usage_error(&format!("--out expects table|csv|json, got {other:?}"))
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline expects a file path"),
            },
            "--write-baseline" => match it.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage_error("--write-baseline expects a file path"),
            },
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage_error("--root expects a directory"),
            },
            "--rules" => {
                for r in RULES {
                    println!("{:<22} {:<5} {}", r.id, r.tier.name(), r.summary);
                }
                return 0;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return 0;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let Some(root) = root_arg.or_else(workspace_root) else {
        eprintln!("wakeup lint: cannot locate the workspace root (try --root)");
        return 2;
    };
    let rep = match crate::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("wakeup lint: {e}");
            return 2;
        }
    };
    let counts = baseline::warn_counts(&rep.findings);

    if let Some(path) = &write_baseline {
        let path = if path.is_relative() {
            root.join(path)
        } else {
            path.clone()
        };
        if let Err(e) = std::fs::write(&path, baseline::render(&counts)) {
            eprintln!("wakeup lint: writing baseline {}: {e}", path.display());
            return 2;
        }
        eprintln!("wakeup lint: wrote warn baseline to {}", path.display());
        baseline_path = Some(path);
    }

    let base = match resolve_baseline(&root, baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("wakeup lint: {e}");
            return 2;
        }
    };
    let diff = baseline::diff(&counts, &base.counts);

    match out {
        Out::Table => print!("{}", report::render_table(&rep)),
        Out::Csv => print!("{}", report::render_csv(&rep)),
        Out::Json => print!("{}", report::render_json(&rep)),
    }

    let deny = rep.deny_count();
    eprintln!(
        "wakeup lint: {} files, {} deny, {} warn ({}), {} suppressed",
        rep.files,
        deny,
        rep.warn_count(),
        base.describe(&diff),
        rep.suppressed,
    );
    for (rule, file, was, now) in &diff.regressions {
        eprintln!(
            "wakeup lint: REGRESSION {rule} in {file}: {was} -> {now} (ratchet only goes down)"
        );
    }
    if !diff.improvements.is_empty() && diff.regressions.is_empty() {
        eprintln!(
            "wakeup lint: warn tier improved at {} site(s) — re-run with --write-baseline to tighten the ratchet",
            diff.improvements.len()
        );
    }
    if deny > 0 || !diff.regressions.is_empty() {
        1
    } else {
        0
    }
}

/// A resolved baseline: counts plus where they came from (for messages).
struct Baseline {
    counts: baseline::Counts,
    source: Option<String>,
}

impl Baseline {
    fn describe(&self, diff: &baseline::Diff) -> String {
        match &self.source {
            Some(src) => format!("{} regressions vs {}", diff.regressions.len(), src),
            None => "no baseline".to_string(),
        }
    }
}

fn resolve_baseline(root: &std::path::Path, explicit: Option<PathBuf>) -> Result<Baseline, String> {
    if let Some(path) = explicit {
        let path = if path.is_relative() {
            root.join(path)
        } else {
            path
        };
        let counts = baseline::load(&path).map_err(|e| format!("baseline: {e}"))?;
        return Ok(Baseline {
            counts,
            source: Some(path.display().to_string()),
        });
    }
    let default = root.join("ci/lint-baseline.jsonl");
    if default.is_file() {
        let counts = baseline::load(&default).map_err(|e| format!("baseline: {e}"))?;
        return Ok(Baseline {
            counts,
            source: Some("ci/lint-baseline.jsonl".to_string()),
        });
    }
    Ok(Baseline {
        counts: baseline::Counts::new(),
        source: None,
    })
}

fn usage_error(msg: &str) -> i32 {
    eprintln!("wakeup lint: {msg}");
    eprint!("{USAGE}");
    2
}
