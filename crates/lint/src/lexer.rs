//! A minimal Rust lexer — just enough to scan real-world sources without
//! being fooled by comments, strings, raw strings or char literals.
//!
//! The workspace builds with no registry access, so there is no `syn`;
//! the rules only need a token stream with line numbers plus the comment
//! text (for `// SAFETY:` audits and `// lint: allow(...)` pragmas), and
//! this hand-rolled scanner provides exactly that. It understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte strings, and raw strings
//!   (`r"…"`, `r#"…"#` with any number of hashes, `br#"…"#`),
//! * char literals (including escaped ones like `'\''` and `'\u{1f600}'`)
//!   disambiguated from lifetimes (`'a`, `'static`, `'_`),
//! * raw identifiers (`r#type`),
//! * identifiers, numeric literals, and single-char punctuation.
//!
//! Everything inside comments / strings / chars is **excluded** from the
//! token stream, so a rule matching the `unsafe` identifier can never fire
//! on `"unsafe"` in a string or on prose in a doc comment.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `use`, `unsafe`, …).
    Ident(String),
    /// A single punctuation / operator character (`:`, `!`, `{`, …).
    Punct(char),
    /// A string literal's inner content with `\"` and `\\` unescaped
    /// (raw strings pass through verbatim).
    Str(String),
    /// A numeric literal (content not retained — no rule needs it).
    Num,
    /// A char literal (content not retained).
    Char,
    /// A lifetime (`'a`, `'static`; content not retained).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// One comment line: block comments spanning several lines contribute one
/// entry per line, so line-anchored scans (SAFETY audits, pragmas) work
/// uniformly.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line number this comment text sits on.
    pub line: u32,
    /// The text without the `//` / `/*` delimiters.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment lines in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comment lines. The scanner never fails: bytes
/// it cannot classify become [`Tok::Punct`], and unterminated literals run
/// to end-of-file (rustc would have rejected the file long before the lint
/// sees it, so graceful degradation beats erroring).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let s = self.string();
                    self.push(Tok::Str(s), line);
                }
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.quote(line),
                c if c.is_alphabetic() || c == '_' => {
                    let id = self.ident();
                    self.push(Tok::Ident(id), line);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(Tok::Num, line);
                }
                c => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1u32;
        let mut line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else if c == '/' && self.peek(1) == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
                text.push_str("/*");
            } else if c == '\n' {
                self.out.comments.push(Comment {
                    line,
                    text: std::mem::take(&mut text),
                });
                self.bump();
                line = self.line;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// A cooked string literal starting at the opening `"`. Returns the
    /// content with `\"` / `\\` unescaped (other escapes pass through).
    fn string(&mut self) -> String {
        self.bump(); // opening quote
        let mut content = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => match self.bump() {
                    Some('"') => content.push('"'),
                    Some('\\') => content.push('\\'),
                    Some(e) => {
                        content.push('\\');
                        content.push(e);
                    }
                    None => break,
                },
                c => content.push(c),
            }
        }
        content
    }

    /// Handle `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, `b'x'`.
    /// Returns true when a literal (or raw identifier) was consumed.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let c = self.peek(0).expect("caller peeked");
        // Figure out the shape without consuming.
        let mut i = 1;
        if c == 'b' {
            match self.peek(1) {
                Some('\'') => {
                    // Byte char literal b'x'.
                    self.bump(); // b
                    self.quote(line);
                    return true;
                }
                Some('"') => {
                    self.bump();
                    let s = self.string();
                    self.push(Tok::Str(s), line);
                    return true;
                }
                Some('r') => i = 2,
                _ => return false, // plain identifier starting with b
            }
        }
        // `r` (or `br`) followed by hashes then a quote → raw string;
        // `r#` followed by an identifier char → raw identifier.
        let mut hashes = 0usize;
        while self.peek(i + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(i + hashes) {
            Some('"') => {
                for _ in 0..i + hashes + 1 {
                    self.bump();
                }
                let content = self.raw_string(hashes);
                self.push(Tok::Str(content), line);
                true
            }
            Some(c2) if hashes == 1 && (c2.is_alphabetic() || c2 == '_') => {
                // Raw identifier r#type: consume `r#` then lex the ident.
                self.bump();
                self.bump();
                let id = self.ident();
                self.push(Tok::Ident(id), line);
                true
            }
            _ => false,
        }
    }

    /// Content of a raw string whose opening `r#*"` was already consumed.
    fn raw_string(&mut self, hashes: usize) -> String {
        let mut content = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0;
                while seen < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
                content.push('"');
                for _ in 0..seen {
                    content.push('#');
                }
            } else {
                content.push(c);
            }
        }
        content
    }

    /// A `'`: char literal or lifetime.
    fn quote(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume through the closing quote.
                self.bump();
                self.bump(); // the escaped char (enough for \u too: loop below)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::Char, line);
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                // `'a'` is a char, `'a` / `'static` a lifetime.
                let mut len = 1;
                while self
                    .peek(len)
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    len += 1;
                }
                if len == 1 && self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(Tok::Char, line);
                } else {
                    for _ in 0..len {
                        self.bump();
                    }
                    self.push(Tok::Lifetime, line);
                }
            }
            Some(_) => {
                // Non-alphabetic char literal like '(' or '0'.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::Char, line);
            }
            None => self.push(Tok::Punct('\''), line),
        }
    }

    fn ident(&mut self) -> String {
        let mut id = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                id.push(c);
                self.bump();
            } else {
                break;
            }
        }
        id
    }

    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the literal; `1..n` does not.
                self.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_content() {
        let src = r##"
            let a = "unsafe HashMap // not a comment";
            // unsafe in a line comment
            /* unsafe in a block /* nested */ comment */
            let b = r#"raw // string with "quotes" and unsafe"#;
            let c = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn raw_strings_with_hashes_terminate_correctly() {
        let lexed = lex(r###"let x = r##"inner "# still inside"## ; unsafe"###);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r##"inner "# still inside"##]);
        // The `unsafe` after the literal IS visible.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Ident("unsafe".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\''; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn comment_text_is_captured_per_line() {
        let lexed = lex("// SAFETY: fine\nlet x = 1; /* multi\nline */\n");
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].text.contains("multi"));
        assert_eq!(lexed.comments[2].line, 3);
    }

    #[test]
    fn line_numbers_track_through_literals() {
        let src = "let a = \"one\ntwo\";\nunsafe {}";
        let lexed = lex(src);
        let uns = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unsafe".into()))
            .unwrap();
        assert_eq!(uns.line, 3);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }
}
