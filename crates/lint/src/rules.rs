//! The rule engine: each rule is one pass over a [`SourceFile`]'s token
//! stream (the trace-schema rule, which cross-checks three artifacts, lives
//! in [`crate::schema`]).

use crate::lexer::Tok;
use crate::policy::{self, Ctx, FileClass};
use crate::source::SourceFile;
use wakeup_analysis::serial::Record;

/// Finding severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Fails the build outright.
    Deny,
    /// Diffed against the committed baseline (ratchet-down).
    Warn,
}

impl Tier {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Deny => "deny",
            Tier::Warn => "warn",
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (kebab-case).
    pub rule: &'static str,
    /// Severity tier.
    pub tier: Tier,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// The finding as a deterministic machine-readable record.
    pub fn record(&self) -> Record {
        Record::new()
            .with("rule", self.rule)
            .with("tier", self.tier.name())
            .with("file", self.file.as_str())
            .with("line", u64::from(self.line))
            .with("message", self.message.as_str())
    }
}

/// Rule ids.
pub const DEFAULT_HASH_STATE: &str = "default-hash-state";
/// See [`DEFAULT_HASH_STATE`].
pub const WALL_CLOCK: &str = "wall-clock";
/// See [`DEFAULT_HASH_STATE`].
pub const AMBIENT_RNG: &str = "ambient-rng";
/// See [`DEFAULT_HASH_STATE`].
pub const UNSAFE_NEEDS_SAFETY: &str = "unsafe-needs-safety";
/// See [`DEFAULT_HASH_STATE`].
pub const SINK_DISCIPLINE: &str = "sink-discipline";
/// See [`DEFAULT_HASH_STATE`].
pub const ENV_DISCIPLINE: &str = "env-discipline";
/// See [`DEFAULT_HASH_STATE`].
pub const LAYERING: &str = "layering";
/// See [`DEFAULT_HASH_STATE`].
pub const PANIC_FREE_HOT_PATH: &str = "panic-free-hot-path";
/// See [`DEFAULT_HASH_STATE`].
pub const TRACE_SCHEMA_SYNC: &str = "trace-schema-sync";
/// Meta-rule: malformed / reason-less allow pragmas.
pub const LINT_PRAGMA: &str = "lint-pragma";

/// Static description of one rule, for `wakeup lint`'s listing and docs.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// Severity tier.
    pub tier: Tier,
    /// One-line rationale.
    pub summary: &'static str,
}

/// Every rule the analyzer implements.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: DEFAULT_HASH_STATE,
        tier: Tier::Deny,
        summary: "HashMap/HashSet with the default RandomState in deterministic crates — \
                  iteration order can leak into transcripts/traces/artifacts",
    },
    RuleInfo {
        id: WALL_CLOCK,
        tier: Tier::Deny,
        summary: "Instant::now/SystemTime outside the wall-clock tier \
                  (runner timers, progress, calibration, benches)",
    },
    RuleInfo {
        id: AMBIENT_RNG,
        tier: Tier::Deny,
        summary: "thread_rng/from_entropy/OsRng anywhere outside the compat shims — \
                  all randomness must be seeded",
    },
    RuleInfo {
        id: UNSAFE_NEEDS_SAFETY,
        tier: Tier::Deny,
        summary: "every unsafe block/impl/fn must carry a // SAFETY: comment",
    },
    RuleInfo {
        id: SINK_DISCIPLINE,
        tier: Tier::Deny,
        summary: "stray println!/eprintln! outside Sink/ProgressSink implementations and bins",
    },
    RuleInfo {
        id: ENV_DISCIPLINE,
        tier: Tier::Deny,
        summary: "std::env reads outside the CLI env-wiring modules",
    },
    RuleInfo {
        id: LAYERING,
        tier: Tier::Deny,
        summary: "use/extern declarations must respect the workspace crate DAG",
    },
    RuleInfo {
        id: PANIC_FREE_HOT_PATH,
        tier: Tier::Warn,
        summary: "unwrap/expect/panic!/indexing in the engine slot loop and tracer emit paths \
                  (baseline-ratcheted)",
    },
    RuleInfo {
        id: TRACE_SCHEMA_SYNC,
        tier: Tier::Deny,
        summary: "TraceEvent kinds/fields in tracer.rs must match README §Observability \
                  and the CI validator",
    },
    RuleInfo {
        id: LINT_PRAGMA,
        tier: Tier::Deny,
        summary: "lint: allow(...) pragmas must name a known rule and give a reason",
    },
];

/// Look up a rule's tier by id.
pub fn tier_of(rule: &str) -> Option<Tier> {
    RULES.iter().find(|r| r.id == rule).map(|r| r.tier)
}

/// The outcome of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileOutcome {
    /// Findings that survived pragma suppression.
    pub findings: Vec<Finding>,
    /// Findings suppressed by reasoned pragmas.
    pub suppressed: u64,
}

/// Run every token rule over one file.
pub fn lint_tokens(rel: &str, class: &FileClass, sf: &SourceFile) -> FileOutcome {
    let mut out = FileOutcome::default();
    pragma_hygiene(rel, sf, &mut out);
    default_hash_state(rel, class, sf, &mut out);
    wall_clock(rel, class, sf, &mut out);
    ambient_rng(rel, class, sf, &mut out);
    unsafe_needs_safety(rel, sf, &mut out);
    sink_discipline(rel, class, sf, &mut out);
    env_discipline(rel, class, sf, &mut out);
    layering(rel, class, sf, &mut out);
    panic_free_hot_path(rel, class, sf, &mut out);
    out
}

/// Push a finding unless a reasoned pragma on the same / preceding line
/// suppresses it.
fn push(
    out: &mut FileOutcome,
    sf: &SourceFile,
    rule: &'static str,
    tier: Tier,
    rel: &str,
    line: u32,
    message: String,
) {
    if sf.suppressed(rule, line) {
        out.suppressed += 1;
        return;
    }
    out.findings.push(Finding {
        rule,
        tier,
        file: rel.to_string(),
        line,
        message,
    });
}

/// Pragmas themselves are audited: a reason is mandatory, and the rule name
/// must exist (a typo would otherwise silently suppress nothing).
fn pragma_hygiene(rel: &str, sf: &SourceFile, out: &mut FileOutcome) {
    for p in &sf.pragmas {
        if tier_of(&p.rule).is_none() {
            out.findings.push(Finding {
                rule: LINT_PRAGMA,
                tier: Tier::Deny,
                file: rel.to_string(),
                line: p.line,
                message: format!("allow pragma names unknown rule '{}'", p.rule),
            });
        } else if !p.has_reason {
            out.findings.push(Finding {
                rule: LINT_PRAGMA,
                tier: Tier::Deny,
                file: rel.to_string(),
                line: p.line,
                message: format!(
                    "allow({}) pragma has no reason — `// lint: allow({}) — <why>`",
                    p.rule, p.rule
                ),
            });
        }
    }
}

fn ident_at(sf: &SourceFile, i: usize) -> Option<&str> {
    match &sf.lexed.tokens.get(i)?.tok {
        Tok::Ident(id) => Some(id.as_str()),
        _ => None,
    }
}

fn punct_at(sf: &SourceFile, i: usize) -> Option<char> {
    match sf.lexed.tokens.get(i)?.tok {
        Tok::Punct(c) => Some(c),
        _ => None,
    }
}

fn default_hash_state(rel: &str, class: &FileClass, sf: &SourceFile, out: &mut FileOutcome) {
    if !policy::DETERMINISTIC_CRATES.contains(&class.krate.as_str()) || class.ctx != Ctx::Src {
        return;
    }
    for (i, t) in sf.lexed.tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if (id == "HashMap" || id == "HashSet") && !sf.flags[i].in_use && !sf.flags[i].is_test {
            push(
                out,
                sf,
                DEFAULT_HASH_STATE,
                Tier::Deny,
                rel,
                t.line,
                format!(
                    "{id} with the default RandomState in a deterministic crate — use \
                     BTreeMap/BTreeSet, sorted-key iteration, or allow-annotate with a \
                     proof it never iterates"
                ),
            );
        }
    }
}

fn wall_clock(rel: &str, class: &FileClass, sf: &SourceFile, out: &mut FileOutcome) {
    if policy::wall_clock_allowed(class) {
        return;
    }
    for (i, t) in sf.lexed.tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if (id == "Instant" || id == "SystemTime") && !sf.flags[i].in_use && !sf.flags[i].is_test {
            push(
                out,
                sf,
                WALL_CLOCK,
                Tier::Deny,
                rel,
                t.line,
                format!(
                    "{id} outside the wall-clock tier — deterministic code must not read \
                     the clock (use the runner's phase timers or the .exec.jsonl sidecar)"
                ),
            );
        }
    }
}

fn ambient_rng(rel: &str, class: &FileClass, sf: &SourceFile, out: &mut FileOutcome) {
    if class.is_compat() {
        return;
    }
    for t in &sf.lexed.tokens {
        let Tok::Ident(id) = &t.tok else { continue };
        if id == "thread_rng" || id == "from_entropy" || id == "OsRng" {
            push(
                out,
                sf,
                AMBIENT_RNG,
                Tier::Deny,
                rel,
                t.line,
                format!("ambient RNG `{id}` — all randomness must flow from an explicit seed"),
            );
        }
    }
}

fn unsafe_needs_safety(rel: &str, sf: &SourceFile, out: &mut FileOutcome) {
    for t in &sf.lexed.tokens {
        if t.tok == Tok::Ident("unsafe".into()) && !sf.safety_near(t.line) {
            push(
                out,
                sf,
                UNSAFE_NEEDS_SAFETY,
                Tier::Deny,
                rel,
                t.line,
                "unsafe without a // SAFETY: comment on or directly above it".to_string(),
            );
        }
    }
}

fn sink_discipline(rel: &str, class: &FileClass, sf: &SourceFile, out: &mut FileOutcome) {
    if policy::sink_allowed(class, rel) {
        return;
    }
    for (i, t) in sf.lexed.tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        let is_print = matches!(
            id.as_str(),
            "println" | "eprintln" | "print" | "eprint" | "dbg"
        );
        if is_print && punct_at(sf, i + 1) == Some('!') && !sf.flags[i].is_test {
            push(
                out,
                sf,
                SINK_DISCIPLINE,
                Tier::Deny,
                rel,
                t.line,
                format!("stray {id}! — library crates report through Sink/ProgressSink"),
            );
        }
    }
}

fn env_discipline(rel: &str, class: &FileClass, sf: &SourceFile, out: &mut FileOutcome) {
    if policy::env_allowed(class, rel) {
        return;
    }
    for (i, t) in sf.lexed.tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        if id != "env" || sf.flags[i].is_test || sf.flags[i].in_use {
            continue;
        }
        // `env :: var…` — look past the path separator.
        if punct_at(sf, i + 1) == Some(':') && punct_at(sf, i + 2) == Some(':') {
            if let Some(what) = ident_at(sf, i + 3) {
                if matches!(
                    what,
                    "var" | "var_os" | "vars" | "vars_os" | "set_var" | "remove_var"
                ) {
                    push(
                        out,
                        sf,
                        ENV_DISCIPLINE,
                        Tier::Deny,
                        rel,
                        t.line,
                        format!(
                            "std::env::{what} outside the CLI env-wiring modules — thread \
                             configuration through Config/Knobs instead"
                        ),
                    );
                }
            }
        }
    }
}

fn layering(rel: &str, class: &FileClass, sf: &SourceFile, out: &mut FileOutcome) {
    let toks = &sf.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        let root = if id == "use" {
            // First path segment: skip a possible leading `::`.
            let mut j = i + 1;
            while punct_at(sf, j) == Some(':') {
                j += 1;
            }
            ident_at(sf, j)
        } else if id == "extern" && ident_at(sf, i + 1) == Some("crate") {
            ident_at(sf, i + 2)
        } else {
            None
        };
        let Some(root) = root else { continue };
        let Some(dep) = policy::crate_of_ident(root) else {
            continue;
        };
        // A `#[cfg(test)]` region inside `src/` is dev-dependency territory,
        // same as an integration test file.
        let ctx = if sf.flags[i].is_test {
            Ctx::Tests
        } else {
            class.ctx
        };
        if !policy::dep_allowed(&class.krate, ctx, dep) {
            push(
                out,
                sf,
                LAYERING,
                Tier::Deny,
                rel,
                t.line,
                format!(
                    "crate '{}' must not depend on '{dep}' — the workspace DAG is \
                     selectors/runner → mac-sim → core → analysis → lint → bench",
                    class.krate
                ),
            );
        }
    }
}

fn panic_free_hot_path(rel: &str, class: &FileClass, sf: &SourceFile, out: &mut FileOutcome) {
    if !policy::HOT_PATH_FILES.contains(&rel) || class.ctx != Ctx::Src {
        return;
    }
    let toks = &sf.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if sf.flags[i].is_test {
            continue;
        }
        let hit = match &t.tok {
            Tok::Ident(id) if (id == "unwrap" || id == "expect") && i > 0 => {
                // Method position only: `.unwrap()` / `.expect(`.
                (punct_at(sf, i - 1) == Some('.')).then(|| format!(".{id}()"))
            }
            Tok::Ident(id) if id == "panic" || id == "unreachable" || id == "todo" => {
                (punct_at(sf, i + 1) == Some('!')).then(|| format!("{id}!"))
            }
            Tok::Punct('[') if i > 0 => {
                // Indexing expression: `expr[` — preceded by an identifier,
                // a close-bracket or a close-paren (array literals,
                // attributes and slice types are preceded by punctuation).
                let prev = &toks[i - 1].tok;
                let is_index = matches!(prev, Tok::Ident(_))
                    || matches!(prev, Tok::Punct(']') | Tok::Punct(')'));
                is_index.then(|| "indexing".to_string())
            }
            _ => None,
        };
        if let Some(what) = hit {
            push(
                out,
                sf,
                PANIC_FREE_HOT_PATH,
                Tier::Warn,
                rel,
                t.line,
                format!("{what} in a hot path — prefer total code in the slot loop / tracer emit"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::classify;

    fn run(rel: &str, src: &str) -> FileOutcome {
        lint_tokens(rel, &classify(rel), &SourceFile::parse(src))
    }

    #[test]
    fn hash_state_fires_only_in_deterministic_src() {
        let src = "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); m.x(); }";
        let det = run("crates/mac-sim/src/x.rs", src);
        assert_eq!(det.findings.len(), 1, "{:?}", det.findings);
        assert_eq!(det.findings[0].rule, DEFAULT_HASH_STATE);
        assert_eq!(det.findings[0].line, 2, "the import itself is exempt");
        // Outside the deterministic tier: silent.
        assert!(run("crates/runner/src/x.rs", src).findings.is_empty());
        // Test context: silent.
        let test_src = "#[cfg(test)]\nmod tests { fn f() { let m = HashMap::new(); } }";
        assert!(run("crates/mac-sim/src/x.rs", test_src).findings.is_empty());
    }

    #[test]
    fn pragmas_suppress_with_reason_only() {
        let ok = "// lint: allow(default-hash-state) — membership-only, never iterated\n\
                  fn f() { let m = HashMap::new(); }";
        let out = run("crates/core/src/x.rs", ok);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert_eq!(out.suppressed, 1);
        let bad = "// lint: allow(default-hash-state)\nfn f() { let m = HashMap::new(); }";
        let out = run("crates/core/src/x.rs", bad);
        let rules: Vec<&str> = out.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&LINT_PRAGMA), "{rules:?}");
        assert!(rules.contains(&DEFAULT_HASH_STATE), "{rules:?}");
        let typo = "// lint: allow(default-hash-stat) — oops\nfn f() {}";
        let out = run("crates/core/src/x.rs", typo);
        assert_eq!(out.findings[0].rule, LINT_PRAGMA);
    }

    #[test]
    fn unsafe_rule_demands_safety_comments() {
        let bad = "fn f() { unsafe { g() } }";
        let out = run("crates/runner/src/x.rs", bad);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, UNSAFE_NEEDS_SAFETY);
        let good = "fn f() {\n    // SAFETY: g upholds its contract here\n    unsafe { g() }\n}";
        assert!(run("crates/runner/src/x.rs", good).findings.is_empty());
        // `unsafe` in a string or comment never fires.
        let phantom = "fn f() { let s = \"unsafe\"; } // unsafe prose";
        assert!(run("crates/runner/src/x.rs", phantom).findings.is_empty());
    }

    #[test]
    fn layering_rejects_upward_edges() {
        let out = run("crates/selectors/src/x.rs", "use mac_sim::Engine;\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, LAYERING);
        assert!(run("crates/core/src/x.rs", "use mac_sim::Engine;\n")
            .findings
            .is_empty());
        // extern crate form.
        let out = run("crates/runner/src/x.rs", "extern crate mac_sim;\n");
        assert_eq!(out.findings.len(), 1);
        // Own crate from an integration test is fine.
        assert!(
            run("crates/runner/tests/t.rs", "use wakeup_runner::Runner;\n")
                .findings
                .is_empty()
        );
    }

    #[test]
    fn hot_path_rule_is_warn_tier_and_scoped() {
        let src = "fn f(v: &[u32]) { let x = v[0]; let y = v.first().unwrap(); panic!(\"no\"); }";
        let out = run("crates/mac-sim/src/engine.rs", src);
        assert_eq!(out.findings.len(), 3, "{:?}", out.findings);
        assert!(out.findings.iter().all(|f| f.tier == Tier::Warn));
        // Same code outside the hot-path files: silent.
        assert!(run("crates/mac-sim/src/pattern.rs", src)
            .findings
            .is_empty());
    }

    #[test]
    fn env_and_sink_and_clock_and_rng_fire_where_expected() {
        let env = "fn f() { let v = std::env::var(\"X\"); }";
        assert_eq!(
            run("crates/core/src/x.rs", env).findings[0].rule,
            ENV_DISCIPLINE
        );
        assert!(run("crates/bench/src/lib.rs", env).findings.is_empty());
        let print = "fn f() { println!(\"hi\"); }";
        assert_eq!(
            run("crates/analysis/src/x.rs", print).findings[0].rule,
            SINK_DISCIPLINE
        );
        assert!(run("crates/runner/src/progress.rs", print)
            .findings
            .is_empty());
        let clock = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            run("crates/mac-sim/src/x.rs", clock).findings[0].rule,
            WALL_CLOCK
        );
        assert!(run("crates/runner/src/lib.rs", clock).findings.is_empty());
        let rng = "fn f() { let r = thread_rng(); }";
        assert_eq!(
            run("crates/runner/src/x.rs", rng).findings[0].rule,
            AMBIENT_RNG
        );
        assert!(run("crates/compat/rand/src/lib.rs", rng)
            .findings
            .is_empty());
    }
}
