//! The workspace policy: which crate a file belongs to, which tier it sits
//! in, and the crate-layering DAG. This is data, not mechanism — the rule
//! engine consults it, and it mirrors the dependency declarations in the
//! crates' `Cargo.toml`s (the layering rule is what keeps source-level
//! `use`s honest against that DAG).

/// Where in a crate a file lives — rules treat test-ish contexts (tests,
/// benches, examples) more leniently than library sources.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ctx {
    /// `src/` library code — the strict tier.
    Src,
    /// `src/bin/` binary entry points (CLI surface: printing allowed).
    Bin,
    /// `tests/` integration tests.
    Tests,
    /// `benches/` micro-benchmarks (wall-clock is their whole point).
    Benches,
    /// `examples/`.
    Examples,
}

impl Ctx {
    /// Test-ish contexts: tests, benches, examples.
    pub fn is_testish(self) -> bool {
        matches!(self, Ctx::Tests | Ctx::Benches | Ctx::Examples)
    }
}

/// A file's classification: owning crate (by directory name) and context.
#[derive(Clone, Debug)]
pub struct FileClass {
    /// Crate directory name: `mac-sim`, `core`, …, `compat/rand`, or
    /// `root` for the facade crate at the workspace root.
    pub krate: String,
    /// The file's context within the crate.
    pub ctx: Ctx,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel: &str) -> FileClass {
    let krate = if let Some(rest) = rel.strip_prefix("crates/compat/") {
        let name = rest.split('/').next().unwrap_or("");
        format!("compat/{name}")
    } else if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("").to_string()
    } else {
        "root".to_string()
    };
    let ctx = if rel.contains("/src/bin/") {
        Ctx::Bin
    } else if rel.contains("/benches/") || rel.starts_with("benches/") {
        Ctx::Benches
    } else if rel.contains("/tests/") || rel.starts_with("tests/") {
        Ctx::Tests
    } else if rel.contains("/examples/") || rel.starts_with("examples/") {
        Ctx::Examples
    } else {
        FileClass::SRC_CTX
    };
    FileClass { krate, ctx }
}

impl FileClass {
    const SRC_CTX: Ctx = Ctx::Src;

    /// Is this one of the compat shim crates?
    pub fn is_compat(&self) -> bool {
        self.krate.starts_with("compat/")
    }
}

/// Crates in the **deterministic tier**: everything they compute can reach
/// a transcript, trace byte or JSON artifact, so iteration order and
/// ambient state must be pinned.
pub const DETERMINISTIC_CRATES: &[&str] = &["mac-sim", "selectors", "core", "analysis"];

/// Files forming the engine's hot path (slot loop + tracer emission): the
/// `panic-free-hot-path` rule audits exactly these.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/mac-sim/src/engine.rs",
    "crates/mac-sim/src/tracer.rs",
];

/// The three artifacts whose trace schemas must agree (code, docs, CI).
pub const TRACE_SCHEMA_FILES: (&str, &str, &str) = (
    "crates/mac-sim/src/tracer.rs",
    "README.md",
    ".github/workflows/ci.yml",
);

/// Is wall-clock (`Instant::now` / `SystemTime`) acceptable here without a
/// pragma? The wall-clock tier: the runner (phase timers, progress), the
/// CLI/bench layer, the compat shims, and all test-ish contexts. The
/// deterministic-tier exception — the adaptive policy's calibration probe
/// loops — is pragma-annotated at its two sites instead.
pub fn wall_clock_allowed(class: &FileClass) -> bool {
    class.krate == "runner" || class.krate == "bench" || class.is_compat() || class.ctx.is_testish()
}

/// Is direct stdout/stderr printing acceptable here without a pragma?
/// Only the CLI crate, the `ProgressSink` implementation, compat shims,
/// binaries and test-ish contexts — library crates must report through
/// `Sink`/`ProgressSink`.
pub fn sink_allowed(class: &FileClass, rel: &str) -> bool {
    class.krate == "bench"
        || class.is_compat()
        || rel == "crates/runner/src/progress.rs"
        || rel == "crates/lint/src/cli.rs"
        || class.ctx.is_testish()
        || class.ctx == Ctx::Bin
}

/// Is `std::env` access acceptable here without a pragma? Only the CLI
/// env-wiring modules, compat shims and test-ish contexts.
pub fn env_allowed(class: &FileClass, rel: &str) -> bool {
    rel == "crates/bench/src/lib.rs"
        || rel == "crates/bench/src/cli.rs"
        || class.is_compat()
        || class.ctx.is_testish()
        || class.ctx == Ctx::Bin
}

/// Map a `use`/`extern crate` root identifier to the crate directory it
/// names, if it is a workspace crate.
pub fn crate_of_ident(ident: &str) -> Option<&'static str> {
    Some(match ident {
        "mac_sim" => "mac-sim",
        "selectors" => "selectors",
        "wakeup_core" => "core",
        "wakeup_analysis" => "analysis",
        "wakeup_runner" => "runner",
        "wakeup_lint" => "lint",
        "wakeup_bench" => "bench",
        "mac_wakeup" => "root",
        "rand" => "compat/rand",
        "rand_chacha" => "compat/rand_chacha",
        "proptest" => "compat/proptest",
        "criterion" => "compat/criterion",
        _ => return None,
    })
}

/// The workspace dependency DAG, mirroring the `Cargo.toml` declarations:
/// for each crate, the workspace crates its `src/` may `use`. Test-ish
/// contexts may additionally use the compat dev-dependencies and the
/// crate's own name.
pub fn allowed_deps(krate: &str) -> &'static [&'static str] {
    match krate {
        "selectors" => &["compat/rand", "compat/rand_chacha"],
        "mac-sim" => &["compat/rand", "selectors"],
        "core" => &["mac-sim", "selectors", "compat/rand", "compat/rand_chacha"],
        "runner" => &[],
        "analysis" => &["mac-sim", "core", "runner"],
        "lint" => &["analysis"],
        "bench" => &[
            "mac-sim",
            "selectors",
            "core",
            "analysis",
            "runner",
            "lint",
            "compat/rand",
            "compat/rand_chacha",
        ],
        "root" => &[
            "mac-sim",
            "selectors",
            "core",
            "analysis",
            "runner",
            "lint",
            "bench",
            "compat/rand",
            "compat/rand_chacha",
            "compat/proptest",
            "compat/criterion",
        ],
        "compat/rand_chacha" => &["compat/rand"],
        _ => &[], // compat/rand, compat/proptest, compat/criterion: leaves
    }
}

/// May `krate` (in context `ctx`) use `dep`? Own-crate references
/// (integration tests and binaries importing their library) are always
/// fine; test-ish contexts may also use the compat shims (dev-deps).
pub fn dep_allowed(krate: &str, ctx: Ctx, dep: &str) -> bool {
    if krate == dep {
        return true;
    }
    if allowed_deps(krate).contains(&dep) {
        return true;
    }
    ctx.is_testish() && dep.starts_with("compat/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_the_workspace_shapes() {
        let c = classify("crates/mac-sim/src/engine.rs");
        assert_eq!(c.krate, "mac-sim");
        assert_eq!(c.ctx, Ctx::Src);
        assert_eq!(classify("crates/bench/src/bin/wakeup.rs").ctx, Ctx::Bin);
        assert_eq!(
            classify("crates/bench/benches/kernels.rs").ctx,
            Ctx::Benches
        );
        assert_eq!(
            classify("crates/compat/rand/src/lib.rs").krate,
            "compat/rand"
        );
        assert_eq!(classify("src/lib.rs").krate, "root");
        assert_eq!(classify("tests/theory.rs").ctx, Ctx::Tests);
        assert_eq!(classify("examples/quickstart.rs").ctx, Ctx::Examples);
    }

    #[test]
    fn dag_is_acyclic_and_matches_the_layering() {
        // Upward edges must be rejected.
        assert!(!dep_allowed("selectors", Ctx::Src, "mac-sim"));
        assert!(!dep_allowed("mac-sim", Ctx::Src, "core"));
        assert!(!dep_allowed("core", Ctx::Src, "analysis"));
        assert!(!dep_allowed("runner", Ctx::Src, "mac-sim"));
        assert!(!dep_allowed("analysis", Ctx::Src, "bench"));
        // Declared edges pass.
        assert!(dep_allowed("core", Ctx::Src, "mac-sim"));
        assert!(dep_allowed("analysis", Ctx::Src, "runner"));
        assert!(dep_allowed("bench", Ctx::Src, "lint"));
        // Dev-deps only in test-ish contexts.
        assert!(!dep_allowed("mac-sim", Ctx::Src, "compat/proptest"));
        assert!(dep_allowed("mac-sim", Ctx::Tests, "compat/proptest"));
        // Own-crate references always pass.
        assert!(dep_allowed("bench", Ctx::Tests, "bench"));
    }
}
