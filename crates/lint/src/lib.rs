//! # wakeup-lint — in-tree determinism & architecture analyzer
//!
//! The workspace's reproducibility claims (bit-identical transcripts,
//! byte-stable JSON artifacts, seeded randomness everywhere) are invariants
//! the compiler cannot check. This crate checks them statically: a
//! dependency-free Rust lexer plus a small set of workspace-specific rules
//! that walk every source file and report violations as deterministic
//! JSON Lines / CSV / table output, gated in CI.
//!
//! The rules (see [`rules::RULES`]):
//!
//! - **deny tier** — `default-hash-state`, `wall-clock`, `ambient-rng`,
//!   `unsafe-needs-safety`, `sink-discipline`, `env-discipline`,
//!   `layering`, `trace-schema-sync`, `lint-pragma`: any finding fails the
//!   gate.
//! - **warn tier** — `panic-free-hot-path`: counted per `(rule, file)` and
//!   ratcheted against the committed baseline (`ci/lint-baseline.jsonl`);
//!   growth fails the gate, shrinkage invites a baseline rewrite.
//!
//! Individual sites are suppressed with a reasoned pragma on the same or
//! preceding line:
//!
//! ```text
//! // lint: allow(default-hash-state) — lookup-only map, never iterated
//! ```
//!
//! Reason-less or unknown-rule pragmas are themselves `lint-pragma`
//! findings, so suppressions stay auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cli;
pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod schema;
pub mod source;
pub mod walk;

use rules::{FileOutcome, Finding, Tier};
use std::io;
use std::path::{Path, PathBuf};

/// The result of linting a whole workspace.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All surviving findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files: u64,
    /// Findings suppressed by reasoned pragmas.
    pub suppressed: u64,
}

impl LintReport {
    /// Number of deny-tier findings.
    pub fn deny_count(&self) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.tier == Tier::Deny)
            .count() as u64
    }

    /// Number of warn-tier findings.
    pub fn warn_count(&self) -> u64 {
        self.findings
            .iter()
            .filter(|f| f.tier == Tier::Warn)
            .count() as u64
    }
}

/// Lint a single file given its workspace-relative path and contents.
/// The path decides which policies apply — fixture tests lean on this to
/// present a snippet as if it lived anywhere in the tree.
pub fn lint_file(rel: &str, src: &str) -> FileOutcome {
    let class = policy::classify(rel);
    let sf = source::SourceFile::parse(src);
    rules::lint_tokens(rel, &class, &sf)
}

/// Lint every Rust source under `root` plus the cross-artifact trace-schema
/// check. Output order is fully deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = walk::rust_sources(root)?;
    let mut report = LintReport {
        files: files.len() as u64,
        ..LintReport::default()
    };
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let outcome = lint_file(rel, &src);
        report.findings.extend(outcome.findings);
        report.suppressed += outcome.suppressed;
    }
    let (tracer, readme, ci) = policy::TRACE_SCHEMA_FILES;
    report
        .findings
        .extend(schema::check(root, tracer, readme, ci));
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Locate the workspace root by walking up from the current directory to
/// the first `Cargo.toml` declaring `[workspace]`.
pub fn workspace_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    for dir in cwd.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir.to_path_buf());
            }
        }
    }
    None
}
