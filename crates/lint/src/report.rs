//! Rendering a [`LintReport`] in the workspace's three standard output
//! formats (table / CSV / JSON Lines), all byte-deterministic: findings are
//! pre-sorted by the workspace linter and every value renders through
//! [`wakeup_analysis::serial`].

use crate::LintReport;
use wakeup_analysis::serial::Record;
use wakeup_analysis::Table;

/// The summary line appended to every rendering (and, for JSON, emitted as
/// a final record) so gates can read totals without re-counting.
pub fn summary_record(report: &LintReport) -> Record {
    Record::new()
        .with("record", "summary")
        .with("files", report.files)
        .with("findings", report.findings.len())
        .with("deny", report.deny_count())
        .with("warn", report.warn_count())
        .with("suppressed", report.suppressed)
}

/// JSON Lines: one record per finding, then the summary record.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.record().to_json());
        out.push('\n');
    }
    out.push_str(&summary_record(report).to_json());
    out.push('\n');
    out
}

/// CSV with a header row; the summary goes to stderr, not the data stream.
pub fn render_csv(report: &LintReport) -> String {
    let mut out = String::from("rule,tier,file,line,message\n");
    for f in &report.findings {
        out.push_str(&f.record().to_csv_line());
        out.push('\n');
    }
    out
}

/// Human-readable markdown table.
pub fn render_table(report: &LintReport) -> String {
    if report.findings.is_empty() {
        return String::from("no findings\n");
    }
    let mut table = Table::new(["rule", "tier", "location", "message"]);
    for f in &report.findings {
        table.push_row([
            f.rule.to_string(),
            f.tier.name().to_string(),
            format!("{}:{}", f.file, f.line),
            f.message.clone(),
        ]);
    }
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, Tier};

    fn sample() -> LintReport {
        LintReport {
            findings: vec![Finding {
                rule: "wall-clock",
                tier: Tier::Deny,
                file: "crates/core/src/x.rs".into(),
                line: 12,
                message: "Instant::now in deterministic code".into(),
            }],
            files: 3,
            suppressed: 1,
        }
    }

    #[test]
    fn json_rendering_is_stable() {
        let r = sample();
        let json = render_json(&r);
        assert_eq!(
            json,
            "{\"rule\":\"wall-clock\",\"tier\":\"deny\",\"file\":\"crates/core/src/x.rs\",\
             \"line\":12,\"message\":\"Instant::now in deterministic code\"}\n\
             {\"record\":\"summary\",\"files\":3,\"findings\":1,\"deny\":1,\"warn\":0,\
             \"suppressed\":1}\n"
        );
        assert_eq!(
            json,
            render_json(&r),
            "repeat renders must be byte-identical"
        );
    }

    #[test]
    fn csv_and_table_render() {
        let r = sample();
        assert!(render_csv(&r).starts_with("rule,tier,file,line,message\n"));
        assert!(render_table(&r).contains("crates/core/src/x.rs:12"));
        assert_eq!(render_table(&LintReport::default()), "no findings\n");
    }
}
