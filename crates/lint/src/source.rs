//! Per-file context annotation on top of the raw token stream: `use`-item
//! spans, `#[cfg(test)]` / `#[test]` regions, allow pragmas and `SAFETY:`
//! comment lines — the shared substrate every rule scans.

use crate::lexer::{lex, Lexed, Tok, Token};

/// Context flags for one token.
#[derive(Clone, Copy, Debug, Default)]
pub struct Flags {
    /// Inside a `use …;` / `extern crate …;` item (imports are declared
    /// once; rules flag *use sites*, and the layering rule handles the
    /// declarations themselves).
    pub in_use: bool,
    /// Inside a `#[cfg(test)]` module/item or a `#[test]` function. Most
    /// determinism rules skip test-only code: a `HashSet` membership assert
    /// in a unit test cannot leak into an observable.
    pub is_test: bool,
}

/// A `// lint: allow(<rule>) — <reason>` pragma.
#[derive(Clone, Debug)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// The rule id named in the parentheses.
    pub rule: String,
    /// Whether a non-empty reason follows the closing paren. Reason-less
    /// pragmas do **not** suppress and are themselves findings.
    pub has_reason: bool,
}

/// A lexed file plus the context every rule needs.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// The token/comment stream.
    pub lexed: Lexed,
    /// Parallel to `lexed.tokens`.
    pub flags: Vec<Flags>,
    /// All allow pragmas, in source order.
    pub pragmas: Vec<Pragma>,
    /// Lines whose comment text contains `SAFETY:`.
    pub safety_lines: Vec<u32>,
}

impl SourceFile {
    /// Lex and annotate one source file.
    pub fn parse(src: &str) -> SourceFile {
        let lexed = lex(src);
        let flags = annotate(&lexed.tokens);
        let mut pragmas = Vec::new();
        let mut safety_lines = Vec::new();
        for c in &lexed.comments {
            if c.text.contains("SAFETY:") {
                safety_lines.push(c.line);
            }
            if let Some(p) = parse_pragma(c.line, &c.text) {
                pragmas.push(p);
            }
        }
        SourceFile {
            lexed,
            flags,
            pragmas,
            safety_lines,
        }
    }

    /// Is a finding of `rule` at `line` suppressed by a reasoned pragma on
    /// the same or the immediately preceding line?
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.rule == rule && p.has_reason && (p.line == line || p.line + 1 == line))
    }

    /// Is there a `SAFETY:` comment on `line` or within the three lines
    /// above it (the unsafe-audit discipline)?
    pub fn safety_near(&self, line: u32) -> bool {
        self.safety_lines
            .iter()
            .any(|&l| l <= line && l + 3 >= line)
    }
}

/// Parse one comment line as an allow pragma. The grammar is strict on the
/// head (`lint: allow(<rule>)`) and lenient on the reason separator (an
/// em-dash, hyphen or colon may precede the reason text).
fn parse_pragma(line: u32, text: &str) -> Option<Pragma> {
    let t = text.trim_start();
    let rest = t
        .strip_prefix("lint: allow(")
        .or_else(|| t.strip_prefix("lint:allow("))?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim();
    Some(Pragma {
        line,
        rule,
        has_reason: !reason.is_empty(),
    })
}

/// Compute the per-token [`Flags`] in one linear scan: brace-depth tracking
/// for `#[cfg(test)]` / `#[test]` regions and `use`-item spans.
fn annotate(tokens: &[Token]) -> Vec<Flags> {
    let mut flags = Vec::with_capacity(tokens.len());
    let mut depth = 0usize;
    // Depths at which a test region's block opened.
    let mut test_depths: Vec<usize> = Vec::new();
    // A test attribute was seen; the next `{` opens a test region, a `;`
    // closes the (block-less) item.
    let mut pending_test = false;
    let mut in_use = false;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        // Attribute lookahead: `#[test]`, `#[cfg(test)]`, `#[cfg(any(test,…))]`.
        if t.tok == Tok::Punct('#')
            && matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
            && attr_is_test(&tokens[i + 2..])
        {
            pending_test = true;
        }
        match &t.tok {
            Tok::Ident(id) if id == "use" || id == "extern" => in_use = true,
            Tok::Punct(';') => {
                if pending_test && !in_use {
                    // `#[cfg(test)] use …;` — the single item was the scope.
                    pending_test = false;
                }
                flags.push(Flags {
                    in_use,
                    is_test: !test_depths.is_empty() || pending_test,
                });
                in_use = false;
                pending_test = false;
                i += 1;
                continue;
            }
            Tok::Punct('{') => {
                flags.push(Flags {
                    in_use,
                    is_test: !test_depths.is_empty() || pending_test,
                });
                if pending_test {
                    test_depths.push(depth);
                    pending_test = false;
                }
                depth += 1;
                i += 1;
                continue;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if test_depths.last() == Some(&depth) {
                    test_depths.pop();
                }
                flags.push(Flags {
                    in_use,
                    is_test: !test_depths.is_empty(),
                });
                i += 1;
                continue;
            }
            _ => {}
        }
        flags.push(Flags {
            in_use,
            is_test: !test_depths.is_empty() || pending_test,
        });
        i += 1;
    }
    flags
}

/// Does the attribute content starting right after `#[` mark test-only
/// code? Matches `test]` and `cfg(… test …)` up to the closing bracket.
fn attr_is_test(tokens: &[Token]) -> bool {
    match tokens.first().map(|t| &t.tok) {
        Some(Tok::Ident(id)) if id == "test" => {
            matches!(tokens.get(1).map(|t| &t.tok), Some(Tok::Punct(']')))
        }
        Some(Tok::Ident(id)) if id == "cfg" => {
            let mut depth = 0i32;
            for t in &tokens[1..] {
                match &t.tok {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Punct(']') if depth == 0 => break,
                    Tok::Ident(id) if id == "test" => return true,
                    _ => {}
                }
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(src: &str) -> SourceFile {
        SourceFile::parse(src)
    }

    fn flag_of<'a>(sf: &'a SourceFile, ident: &str) -> (&'a Flags, u32) {
        let (i, t) = sf
            .lexed
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.tok == Tok::Ident(ident.into()))
            .unwrap_or_else(|| panic!("ident {ident} not found"));
        (&sf.flags[i], t.line)
    }

    #[test]
    fn cfg_test_modules_are_test_regions() {
        let sf = parsed(
            "fn live() { touch_map(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { scratch_map(); }\n}\n\
             fn live_again() { after(); }",
        );
        assert!(!flag_of(&sf, "touch_map").0.is_test);
        assert!(flag_of(&sf, "scratch_map").0.is_test);
        assert!(!flag_of(&sf, "after").0.is_test);
    }

    #[test]
    fn test_attr_functions_are_test_regions() {
        let sf = parsed("#[test]\nfn t() { scratch(); }\nfn live() { real(); }");
        assert!(flag_of(&sf, "scratch").0.is_test);
        assert!(!flag_of(&sf, "real").0.is_test);
    }

    #[test]
    fn use_spans_cover_import_items_only() {
        let sf = parsed("use std::collections::HashMap;\nfn f() { HashMap::new(); }");
        let hits: Vec<bool> = sf
            .lexed
            .tokens
            .iter()
            .zip(&sf.flags)
            .filter(|(t, _)| t.tok == Tok::Ident("HashMap".into()))
            .map(|(_, f)| f.in_use)
            .collect();
        assert_eq!(hits, vec![true, false]);
    }

    #[test]
    fn pragmas_require_reasons() {
        let sf = parsed(
            "// lint: allow(default-hash-state) — lookup-only, never iterated\n\
             let a = 1;\n\
             // lint: allow(wall-clock)\n\
             let b = 2;",
        );
        assert_eq!(sf.pragmas.len(), 2);
        assert!(sf.pragmas[0].has_reason);
        assert_eq!(sf.pragmas[0].rule, "default-hash-state");
        assert!(!sf.pragmas[1].has_reason);
        assert!(sf.suppressed("default-hash-state", 2));
        assert!(
            !sf.suppressed("wall-clock", 4),
            "reason-less must not suppress"
        );
    }

    #[test]
    fn safety_comments_are_line_anchored() {
        let sf = parsed("// SAFETY: delegates to System\nunsafe { x() }\n\n\n\nunsafe { y() }");
        assert!(sf.safety_near(2));
        assert!(!sf.safety_near(6));
    }
}
