//! Bounded certification of waking matrices.
//!
//! Theorem 5.2 proves a waking matrix *exists*; §7 leaves the explicit
//! construction open, and full certification is exponential (the proof's
//! union bound ranges over `(3cn⁴)^{x*}` wake-pattern families). What *is*
//! tractable is **bounded certification**: exhaustively enumerate every
//! wake-up pattern with at most `k_max` stations and wake times inside a
//! window of `w` slots, and check that the matrix isolates a station within
//! the Theorem 5.3 horizon for each. For toy universes (`n ≤ 10`,
//! `k_max ≤ 3`, `w ≤ 8`) this is millions of cheap checks — a machine-checked
//! certificate that a concrete seeded matrix is a waking matrix *for that
//! bounded adversary class*.
//!
//! [`certify`] either returns the [`Certificate`] (patterns checked, worst
//! isolation latency observed) or the exact [`FailingPattern`] — which makes
//! it double as a *seed search*: iterate seeds until one certifies
//! ([`search_certified_seed`]).

use crate::waking_matrix::WakingMatrix;
use mac_sim::Slot;

/// Parameters of a bounded certification sweep.
#[derive(Clone, Copy, Debug)]
pub struct CertifyConfig {
    /// Check patterns with `1..=k_max` stations.
    pub k_max: u32,
    /// Wake times range over `[0, window)`.
    pub window: Slot,
    /// Isolation must occur within `horizon_scale ×` the Theorem 5.3
    /// horizon `2c·k·log n·log log n` (counted from each pattern's `s`).
    pub horizon_scale: u64,
}

impl CertifyConfig {
    /// Default bounded adversary: `k_max = 3`, window 6, horizon scale 1.
    pub fn new() -> Self {
        CertifyConfig {
            k_max: 3,
            window: 6,
            horizon_scale: 1,
        }
    }
}

impl Default for CertifyConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A successful bounded certificate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Number of wake patterns exhaustively checked.
    pub patterns_checked: u64,
    /// The worst isolation latency (`t − s`) observed over all patterns.
    pub worst_latency: u64,
}

/// A counterexample: a pattern the matrix fails to isolate in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailingPattern {
    /// The `(station, wake slot)` pairs of the failing pattern.
    pub wakes: Vec<(u32, Slot)>,
    /// The horizon that was searched without finding an isolation slot.
    pub horizon: u64,
}

/// Does the matrix isolate some station for this wake assignment within
/// `horizon` slots of `s`? Returns the isolation latency if so.
///
/// Transmission semantics are exactly the `wakeup(u, σ)` protocol's
/// ([`WakingMatrix::transmits`]): waiting until `µ(σ)`, walking rows,
/// silent after the scan.
pub fn isolation_latency(
    matrix: &WakingMatrix,
    wakes: &[(u32, Slot)],
    horizon: u64,
) -> Option<u64> {
    let s = wakes.iter().map(|&(_, t)| t).min()?;
    for t in s..=s + horizon {
        let mut txs = 0u32;
        for &(u, sigma) in wakes {
            if sigma <= t && matrix.transmits(u, sigma, t) {
                txs += 1;
                if txs > 1 {
                    break;
                }
            }
        }
        if txs == 1 {
            return Some(t - s);
        }
    }
    None
}

/// Exhaustively certify `matrix` against every pattern of the bounded
/// adversary class described by `cfg`.
pub fn certify(matrix: &WakingMatrix, cfg: CertifyConfig) -> Result<Certificate, FailingPattern> {
    let n = matrix.n();
    let horizon_for = |k: u32| -> u64 {
        cfg.horizon_scale
            * 2
            * u64::from(matrix.c())
            * u64::from(k)
            * u64::from(matrix.rows())
            * u64::from(matrix.window())
    };

    let mut checked = 0u64;
    let mut worst = 0u64;
    let mut failure: Option<FailingPattern> = None;

    for k in 1..=cfg.k_max.min(n) {
        let horizon = horizon_for(k);
        selectors::math::for_each_subset(n, k, |subset| {
            // Enumerate wake-time assignments in [0, window)^k by counting.
            let k = subset.len();
            let total: u64 = cfg.window.pow(k as u32);
            let mut wakes: Vec<(u32, Slot)> = subset.iter().map(|&u| (u, 0)).collect();
            for code in 0..total {
                let mut rest = code;
                for (slot_ref, _) in wakes.iter_mut().map(|w| (&mut w.1, ())) {
                    *slot_ref = rest % cfg.window;
                    rest /= cfg.window;
                }
                checked += 1;
                match isolation_latency(matrix, &wakes, horizon) {
                    Some(lat) => worst = worst.max(lat),
                    None => {
                        failure = Some(FailingPattern {
                            wakes: wakes.clone(),
                            horizon,
                        });
                        return false;
                    }
                }
            }
            true
        });
        if failure.is_some() {
            break;
        }
    }

    match failure {
        Some(f) => Err(f),
        None => Ok(Certificate {
            patterns_checked: checked,
            worst_latency: worst,
        }),
    }
}

/// Search seeds `0..max_seeds` for a matrix that certifies under `cfg`;
/// returns the first certified seed with its certificate.
///
/// Theorem 5.2 says a random matrix works with probability `1 − n^{-Ω(1)}`,
/// so the expected number of seeds tried is ≈ 1.
pub fn search_certified_seed(
    mut params: crate::waking_matrix::MatrixParams,
    cfg: CertifyConfig,
    max_seeds: u64,
) -> Option<(u64, Certificate)> {
    for seed in 0..max_seeds {
        params.seed = seed;
        let matrix = WakingMatrix::new(params);
        if let Ok(cert) = certify(&matrix, cfg) {
            return Some((seed, cert));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waking_matrix::MatrixParams;

    #[test]
    fn default_matrix_certifies_on_a_toy_universe() {
        let matrix = WakingMatrix::new(MatrixParams::new(8));
        let cfg = CertifyConfig {
            k_max: 2,
            window: 4,
            horizon_scale: 1,
        };
        let cert = certify(&matrix, cfg).expect("seed 0 should certify n=8, k≤2");
        // Patterns: C(8,1)·4 + C(8,2)·16 = 32 + 448 = 480.
        assert_eq!(cert.patterns_checked, 480);
        // Worst latency within the k=2 horizon.
        let horizon =
            2 * u64::from(matrix.c()) * 2 * u64::from(matrix.rows()) * u64::from(matrix.window());
        assert!(cert.worst_latency <= horizon);
    }

    #[test]
    fn isolation_latency_matches_simulation() {
        use mac_sim::prelude::*;
        let matrix = WakingMatrix::new(MatrixParams::new(16).with_seed(3));
        let wakes = [(2u32, 5u64), (9, 7), (14, 5)];
        let horizon = 10_000;
        let expected = isolation_latency(&matrix, &wakes, horizon);

        let protocol = crate::wakeup_n::WakeupN::with_matrix(std::sync::Arc::new(matrix));
        let pattern =
            WakePattern::new(wakes.iter().map(|&(u, t)| (StationId(u), t)).collect()).unwrap();
        let out = Simulator::new(SimConfig::new(16).with_max_slots(horizon + 1))
            .run(&protocol, &pattern, 0)
            .unwrap();
        assert_eq!(expected, out.latency());
    }

    #[test]
    fn failing_patterns_are_reported_exactly() {
        // A matrix with an absurdly small horizon must fail, and the failing
        // pattern must genuinely not isolate within that horizon.
        let matrix = WakingMatrix::new(MatrixParams::new(8));
        // Scale the horizon down to zero slots by using a custom check.
        let wakes = [(0u32, 0u64), (1, 0)];
        // Find the true latency, then certify with a horizon one below it.
        let true_lat =
            isolation_latency(&matrix, &wakes, 100_000).expect("matrix must isolate eventually");
        if true_lat > 0 {
            assert_eq!(isolation_latency(&matrix, &wakes, true_lat - 1), None);
        }
    }

    #[test]
    fn search_finds_a_seed_quickly() {
        let params = MatrixParams::new(6);
        let cfg = CertifyConfig {
            k_max: 2,
            window: 3,
            horizon_scale: 2,
        };
        let (seed, cert) = search_certified_seed(params, cfg, 16).expect("some seed certifies");
        assert!(seed < 16);
        assert!(cert.patterns_checked > 0);
    }

    #[test]
    fn k1_patterns_always_isolate_fast() {
        // A lone station is isolated at its first own transmission; row 1
        // has density ≥ 2^{-(1+W-1)} so within a few windows.
        let matrix = WakingMatrix::new(MatrixParams::new(8));
        for u in 0..8u32 {
            for sigma in 0..6u64 {
                let lat = isolation_latency(&matrix, &[(u, sigma)], 500)
                    .unwrap_or_else(|| panic!("station {u} at σ={sigma} never isolated"));
                assert!(lat <= 200, "u={u} σ={sigma}: latency {lat}");
            }
        }
    }
}
