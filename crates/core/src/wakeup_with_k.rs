//! `wakeup_with_k` — the complete Scenario B algorithm (§4):
//! interleave round-robin with `wait_and_go`.
//!
//! **Even** global slots run round-robin (position `t/2`); **odd** global
//! slots run `wait_and_go` (position `(t-1)/2`, a global anchor — all
//! stations agree on it because the clock is global). The wait-until-boundary
//! rule of `wait_and_go` is applied in position space.
//!
//! Worst-case time `Θ(min{n − k + 1, k + k log(n/k)}) = Θ(k log(n/k) + 1)`,
//! optimal by the same pair of lower bounds as Scenario A.
//!
//! **Promise violations.** If more than `k` stations wake (breaking Scenario
//! B's promise), `wait_and_go`'s selectivity guarantee evaporates, but the
//! interleaved round-robin still guarantees completion within `2n` slots —
//! the algorithm degrades instead of failing (pinned by a test below).

use crate::family_provider::FamilyProvider;
use crate::select_among_first::{DoublingSchedule, NextPositionCache};
use crate::wait_and_go::WaitAndGo;
use mac_sim::{Action, Protocol, Slot, Station, StationId, TxHint};
use selectors::math::next_congruent;
use std::sync::Arc;

/// The Scenario B algorithm: round-robin ⊕ wait-and-go.
#[derive(Clone, Debug)]
pub struct WakeupWithK {
    n: u32,
    k: u32,
    schedule: Arc<DoublingSchedule>,
}

impl WakeupWithK {
    /// Build for `n` stations with known contention bound `k`.
    pub fn new(n: u32, k: u32, provider: FamilyProvider) -> Self {
        let wag = WaitAndGo::new(n, k, provider);
        WakeupWithK {
            n,
            k,
            schedule: Arc::clone(wag.schedule()),
        }
    }

    /// Like [`new`](Self::new), but the wait-and-go schedule comes out of
    /// `cache` — built once per `(n, k, provider)` per ensemble and shared
    /// across runs.
    pub fn cached(
        n: u32,
        k: u32,
        provider: &FamilyProvider,
        cache: &crate::cache::ConstructionCache,
    ) -> Self {
        let wag = WaitAndGo::cached(n, k, provider, cache);
        WakeupWithK {
            n,
            k,
            schedule: Arc::clone(wag.schedule()),
        }
    }

    /// The contention bound `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The cyclic period `z` of the wait-and-go component (in positions).
    pub fn period(&self) -> u64 {
        self.schedule.period()
    }
}

struct WwkStation {
    id: StationId,
    n: u32,
    /// First wait-and-go *position* at which this station may transmit.
    go_position: u64,
    schedule: Arc<DoublingSchedule>,
    /// Memoized wait-and-go `next_position` answer (see
    /// [`NextPositionCache`]).
    wag_cache: NextPositionCache,
}

impl Station for WwkStation {
    fn wake(&mut self, sigma: Slot) {
        // First odd slot ≥ sigma, mapped to its wait-and-go position.
        let first_odd = sigma + (sigma + 1) % 2;
        let p0 = (first_odd - 1) / 2;
        self.go_position = self.schedule.next_boundary(p0);
    }

    fn act(&mut self, t: Slot) -> Action {
        if t.is_multiple_of(2) {
            Action::from_bool((t / 2) % u64::from(self.n) == u64::from(self.id.0))
        } else {
            let p = (t - 1) / 2;
            Action::from_bool(p >= self.go_position && self.schedule.transmits(self.id.0, p))
        }
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // Round-robin component on even slots 2p, p ≡ id (mod n): O(1).
        let rr_slot =
            2 * next_congruent(after.div_ceil(2), u64::from(self.id.0), u64::from(self.n));

        // Wait-and-go component on odd slots 2p + 1, positions gated by the
        // family-boundary wait.
        let q0 = after.saturating_sub(1).div_ceil(2).max(self.go_position);
        let wag_slot = self
            .wag_cache
            .query(&self.schedule, self.id.0, q0)
            .map(|q| 2 * q + 1);

        match wag_slot {
            Some(wag) => TxHint::at(rr_slot.min(wag)),
            None => TxHint::at(rr_slot),
        }
    }
}

impl Protocol for WakeupWithK {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(WwkStation {
            id,
            n: self.n,
            go_position: 0,
            schedule: Arc::clone(&self.schedule),
            wag_cache: NextPositionCache::default(),
        })
    }

    fn name(&self) -> String {
        format!("wakeup-with-k(n={}, k={})", self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn sim(n: u32) -> Simulator {
        Simulator::new(SimConfig::new(n))
    }

    #[test]
    fn solves_all_k_with_simultaneous_start() {
        let n = 64u32;
        for k in [1u32, 2, 4, 8, 32, 64] {
            let p = WakeupWithK::new(n, k, FamilyProvider::default());
            let chosen: Vec<StationId> = (0..k).map(StationId).collect();
            let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "k={k}");
            assert!(out.latency().unwrap() <= 2 * u64::from(n), "k={k}");
        }
    }

    #[test]
    fn solves_adversarial_staggering() {
        let n = 128u32;
        let k = 8u32;
        let p = WakeupWithK::new(n, k, FamilyProvider::default());
        for gap in [1u64, 13, 50, 500] {
            let chosen: Vec<StationId> = (0..k).map(|i| StationId(i * 16 + 3)).collect();
            let pattern = WakePattern::staggered(&chosen, 11, gap).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "gap={gap}");
        }
    }

    #[test]
    fn promise_violation_degrades_to_round_robin_bound() {
        // Wake 4k stations: wait_and_go's guarantee is void, but the
        // interleaved round-robin must still finish within 2n slots.
        let n = 64u32;
        let p = WakeupWithK::new(n, 4, FamilyProvider::default());
        let chosen: Vec<StationId> = (0..16).map(|i| StationId(i * 4)).collect();
        let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        assert!(out.solved());
        assert!(out.latency().unwrap() < 2 * u64::from(n));
    }

    #[test]
    fn latency_scales_with_k_not_n_for_small_k() {
        let n = 2048u32;
        let p = WakeupWithK::new(n, 2, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&[5, 1900]), 0).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        let lat = out.latency().unwrap();
        assert!(lat < u64::from(n) / 4, "latency {lat} should be ≪ n");
    }

    #[test]
    fn no_collision_between_components() {
        // Round-robin owns even slots, wait-and-go odd slots: a transcript
        // slot can only mix transmitters from one component.
        let n = 32u32;
        let p = WakeupWithK::new(n, 4, FamilyProvider::default());
        let pattern = WakePattern::staggered(&ids(&[1, 9, 17, 25]), 0, 3).unwrap();
        let cfg = SimConfig::new(n).with_transcript();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        let tr = out.transcript.unwrap();
        assert!(tr.check_invariants().is_empty());
        for r in tr.records() {
            if r.slot % 2 == 0 {
                // Round-robin slot: at most one transmitter by construction.
                assert!(r.transmitters.len() <= 1, "collision on RR slot {}", r.slot);
            }
        }
    }

    #[test]
    fn works_for_k_equals_n() {
        let n = 16u32;
        let p = WakeupWithK::new(n, n, FamilyProvider::default());
        let all: Vec<StationId> = (0..n).map(StationId).collect();
        let pattern = WakePattern::simultaneous(&all, 0).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        assert!(out.solved());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_k_larger_than_n() {
        WakeupWithK::new(8, 9, FamilyProvider::default());
    }
}
