//! `wait_and_go` — the Scenario B component (§4).
//!
//! The schedule is the fixed cyclic sequence
//! `F = ⟨F₁, F₂, …, F_{⌈log k⌉}⟩` of `(n, 2^i)`-selective families, of total
//! length `z`, indexed by the **global** clock: round `t` corresponds to
//! transmission set `F_{t mod z}`.
//!
//! The crucial rule that gives the algorithm its name: a station activated at
//! round `j` **waits** until the smallest `σ ≥ j` such that `F_{σ mod z}` is
//! the *first* transmission set of one of the selective families, and only
//! from `σ` on transmits according to `F_{t mod z}`.
//!
//! *Correctness* (§4): waiting until a family boundary guarantees that the
//! set of stations participating in any one family's execution does not
//! change during that execution. The participant sets `X₁ ⊆ X₂ ⊆ …` grow
//! with the family index; since `|Xᵢ| ≤ k`, some family `Fᵢ` with
//! `2^{i-1} ≤ |Xᵢ| ≤ 2^i` exists (possibly on a later cyclic pass), and its
//! selectivity yields a success.
//!
//! Time: one full pass costs `z = O(k + k·log(n/k))`, and waiting costs at
//! most another pass ⇒ `O(k log(n/k) + k)` from `s`.

use crate::family_provider::FamilyProvider;
use crate::select_among_first::DoublingSchedule;
use mac_sim::{Action, Protocol, Slot, Station, StationId, TxHint};
use selectors::math::log_n;
use std::sync::Arc;

/// The `wait_and_go` protocol (Scenario B component).
#[derive(Clone, Debug)]
pub struct WaitAndGo {
    n: u32,
    k: u32,
    schedule: Arc<DoublingSchedule>,
}

impl WaitAndGo {
    /// Build for `n` stations with known contention bound `k`.
    ///
    /// For `k = 1` the schedule degenerates to the trivial `(n,1)`-selective
    /// family (the full set): the single awake station transmits immediately.
    pub fn new(n: u32, k: u32, provider: FamilyProvider) -> Self {
        let top = Self::top(n, k);
        WaitAndGo {
            n,
            k,
            schedule: Arc::new(DoublingSchedule::new(&provider, n, top)),
        }
    }

    /// Like [`new`](Self::new), but the doubling schedule (families,
    /// offsets, per-station position indices) comes out of `cache` — built
    /// once per `(n, k, provider)` per ensemble and shared across runs.
    pub fn cached(
        n: u32,
        k: u32,
        provider: &FamilyProvider,
        cache: &crate::cache::ConstructionCache,
    ) -> Self {
        let top = Self::top(n, k);
        WaitAndGo {
            n,
            k,
            schedule: cache.schedule(provider, n, top),
        }
    }

    /// The family-sequence height `⌈log k⌉` (0 for `k = 1`); validates
    /// `1 ≤ k ≤ n`.
    fn top(n: u32, k: u32) -> u32 {
        assert!(n >= 1);
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        if k == 1 {
            0
        } else {
            log_n(u64::from(k))
        }
    }

    /// The contention bound `k` the protocol was built for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The cyclic period `z` of the schedule.
    pub fn period(&self) -> u64 {
        self.schedule.period()
    }

    /// The shared doubling schedule (family boundaries, period).
    pub fn schedule(&self) -> &Arc<DoublingSchedule> {
        &self.schedule
    }
}

struct WagStation {
    id: StationId,
    /// First slot at which this station may transmit (the family boundary
    /// `σ ≥ j` of the paper); set at wake-up.
    go_slot: Slot,
    schedule: Arc<DoublingSchedule>,
}

impl Station for WagStation {
    fn wake(&mut self, sigma: Slot) {
        // Global positions coincide with global slots here (the component
        // runs on its own; the interleaved variant maps slots first).
        self.go_slot = self.schedule.next_boundary(sigma);
    }

    fn act(&mut self, t: Slot) -> Action {
        if t < self.go_slot {
            return Action::Listen;
        }
        Action::from_bool(self.schedule.transmits(self.id.0, t))
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // Positions coincide with global slots for the stand-alone component.
        let from = after.max(self.go_slot);
        match self.schedule.next_position(self.id.0, from) {
            Some(p) => TxHint::at(p),
            None => TxHint::never(),
        }
    }
}

impl Protocol for WaitAndGo {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(WagStation {
            id,
            go_slot: 0,
            schedule: Arc::clone(&self.schedule),
        })
    }

    fn name(&self) -> String {
        format!("wait-and-go(n={}, k={})", self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn sim(n: u32) -> Simulator {
        Simulator::new(SimConfig::new(n))
    }

    #[test]
    fn solves_simultaneous_within_promise() {
        let n = 64u32;
        for k in [1u32, 2, 4, 8, 16] {
            let p = WaitAndGo::new(n, k, FamilyProvider::default());
            let chosen: Vec<StationId> = (0..k).map(|i| StationId(i * (n / k))).collect();
            let pattern = WakePattern::simultaneous(&chosen, 13).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "k={k}");
        }
    }

    #[test]
    fn solves_staggered_arrivals() {
        let n = 64u32;
        let k = 8u32;
        let p = WaitAndGo::new(n, k, FamilyProvider::default());
        for gap in [1u64, 7, 33, 100] {
            let chosen: Vec<StationId> = (0..k).map(|i| StationId(i * 7)).collect();
            let pattern = WakePattern::staggered(&chosen, 5, gap).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "gap={gap}");
        }
    }

    #[test]
    fn k1_station_goes_immediately_after_boundary() {
        let n = 32u32;
        let p = WaitAndGo::new(n, 1, FamilyProvider::default());
        // Period is 1 (single full set), so every slot is a boundary:
        assert_eq!(p.period(), 1);
        let pattern = WakePattern::simultaneous(&ids(&[17]), 42).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        assert_eq!(out.latency(), Some(0));
    }

    #[test]
    fn stations_wait_until_family_boundary() {
        let n = 64u32;
        let k = 8u32;
        let p = WaitAndGo::new(n, k, FamilyProvider::default());
        let boundaries: Vec<u64> = p.schedule().offsets().to_vec();
        // Wake a station mid-family; its first transmission may only occur
        // at or after the next boundary.
        let mid = boundaries[1] + 1; // strictly inside family 2
        let pattern = WakePattern::simultaneous(&ids(&[9]), mid).unwrap();
        let cfg = SimConfig::new(n).with_transcript();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        let tr = out.transcript.clone().unwrap();
        let first_tx = tr
            .records()
            .iter()
            .find(|r| !r.transmitters.is_empty())
            .expect("station must eventually transmit")
            .slot;
        let next_boundary = boundaries
            .iter()
            .copied()
            .find(|&b| b >= mid % p.period())
            .unwrap_or(p.period());
        assert!(
            first_tx >= mid - mid % p.period() + next_boundary.min(p.period()),
            "station transmitted at {first_tx} before its boundary"
        );
        assert!(out.solved());
    }

    #[test]
    fn promise_violation_may_stall_but_never_collides_into_success() {
        // Wake MORE than k stations simultaneously: correctness of the
        // component is no longer guaranteed (this is exactly why the full
        // algorithm interleaves round-robin), but the run must remain a
        // valid channel execution.
        let n = 32u32;
        let p = WaitAndGo::new(n, 2, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&(0..16).collect::<Vec<_>>()), 0).unwrap();
        let cfg = SimConfig::new(n).with_max_slots(2_000).with_transcript();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        let tr = out.transcript.clone().unwrap();
        assert!(tr.check_invariants().is_empty());
        // (It may or may not solve — selectivity for |X|=16 is not promised
        // by (n,2) and (n,4) families alone.)
    }

    #[test]
    fn period_matches_sum_of_family_lengths() {
        let p = WaitAndGo::new(128, 8, FamilyProvider::default());
        let total: u64 = p.schedule().families().iter().map(|f| f.len()).sum();
        assert_eq!(p.period(), total);
        assert_eq!(p.schedule().families().len(), 3); // k=8 → families 2,4,8
    }

    #[test]
    fn deterministic_with_fixed_provider_seed() {
        let n = 64u32;
        let mk = || WaitAndGo::new(n, 4, FamilyProvider::random_with_seed(7));
        let pattern = WakePattern::staggered(&ids(&[1, 20, 40, 63]), 3, 11).unwrap();
        let a = sim(n).run(&mk(), &pattern, 5).unwrap();
        let b = sim(n).run(&mk(), &pattern, 5).unwrap();
        assert_eq!(a.first_success, b.first_success);
    }
}
