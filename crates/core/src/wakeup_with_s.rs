//! `wakeup_with_s` — the complete Scenario A algorithm (§3):
//! interleave round-robin with `select_among_the_first`.
//!
//! With a global clock, interleaving is parity-based: **even** global slots
//! run round-robin (position `t/2`), **odd** global slots run
//! `select_among_the_first` (position = number of odd slots since `s`).
//! Interleaving needs no knowledge of `k` and costs a factor 2.
//!
//! The resulting worst-case time is the minimum of the two components:
//! `Θ(min{n − k + 1, k log(n/k) + k}) = Θ(k log(n/k) + 1)`, which is optimal
//! (Theorem 2.1 for `k > n/c`; Clementi–Monti–Silvestri for `k ≤ n/64`).

use crate::family_provider::FamilyProvider;
use crate::select_among_first::{
    AnyMemberScan, DoublingSchedule, NextPositionCache, Scan, CLASS_SCAN_BUDGET,
};
use mac_sim::{
    Action, ClassStation, MemberRemoval, Members, Protocol, Slot, Station, StationId, TxHint,
    TxTally, TxWord, Until,
};
use selectors::math::next_congruent;
use std::sync::Arc;

/// The Scenario A algorithm: round-robin ⊕ select-among-the-first.
#[derive(Clone, Debug)]
pub struct WakeupWithS {
    n: u32,
    s: Slot,
    schedule: Arc<DoublingSchedule>,
}

impl WakeupWithS {
    /// Build for `n` stations with known first-wake-up slot `s`.
    pub fn new(n: u32, s: Slot, provider: FamilyProvider) -> Self {
        let top = crate::select_among_first::full_doubling_top(n);
        WakeupWithS {
            n,
            s,
            schedule: Arc::new(DoublingSchedule::new(&provider, n, top)),
        }
    }

    /// Like [`new`](Self::new), but the select-among-the-first schedule
    /// comes out of `cache` — built once per `(n, provider)` per ensemble
    /// and shared across runs.
    pub fn cached(
        n: u32,
        s: Slot,
        provider: &FamilyProvider,
        cache: &crate::cache::ConstructionCache,
    ) -> Self {
        let top = crate::select_among_first::full_doubling_top(n);
        WakeupWithS {
            n,
            s,
            schedule: cache.schedule(provider, n, top),
        }
    }

    /// The known starting slot.
    pub fn s(&self) -> Slot {
        self.s
    }
}

struct WwsStation {
    id: StationId,
    n: u32,
    s: Slot,
    participates_saf: bool,
    schedule: Arc<DoublingSchedule>,
    /// Memoized SAF `next_position` answer (see [`NextPositionCache`]).
    saf_cache: NextPositionCache,
}

impl WwsStation {
    /// Number of odd global slots in `[s, t]` minus one — the SAF schedule
    /// position of odd slot `t ≥ s`. All participants woke at `s`, so they
    /// agree on this position.
    fn saf_position(&self, t: Slot) -> u64 {
        debug_assert!(t % 2 == 1 && t >= self.s);
        let first_odd = self.s + (self.s + 1) % 2; // s if odd, s+1 if even
        debug_assert!(first_odd % 2 == 1);
        (t - first_odd) / 2
    }
}

impl Station for WwsStation {
    fn wake(&mut self, sigma: Slot) {
        self.participates_saf = sigma == self.s;
    }

    fn act(&mut self, t: Slot) -> Action {
        if t.is_multiple_of(2) {
            // Even slots: round-robin on position t/2.
            Action::from_bool((t / 2) % u64::from(self.n) == u64::from(self.id.0))
        } else if self.participates_saf && t >= self.s {
            Action::from_bool(self.schedule.transmits(self.id.0, self.saf_position(t)))
        } else {
            Action::Listen
        }
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // Round-robin component: the smallest even slot 2p ≥ after with
        // p ≡ id (mod n), computed in O(1).
        let rr_slot =
            2 * next_congruent(after.div_ceil(2), u64::from(self.id.0), u64::from(self.n));

        // Select-among-the-first component: odd slots, schedule positions
        // counted in odd slots since s.
        let saf_slot = if self.participates_saf {
            let first_odd = self.s + (self.s + 1) % 2;
            let t0 = after.max(first_odd);
            let q0 = (t0 - first_odd).div_ceil(2);
            self.saf_cache
                .query(&self.schedule, self.id.0, q0)
                .map(|q| first_odd + 2 * q)
        } else {
            None
        };

        match saf_slot {
            Some(saf) => TxHint::at(rr_slot.min(saf)),
            None => TxHint::at(rr_slot),
        }
    }

    fn fill_tx_word(&mut self, base: Slot, width: u32) -> Option<TxWord> {
        // Both components are oblivious (participation fixed at wake), so
        // the interleaved tile is an unconditional fact: round-robin parity
        // arithmetic on even slots, one schedule lookup per odd slot.
        let n = u64::from(self.n);
        let id = u64::from(self.id.0);
        let mut bits = 0u64;
        for j in 0..u64::from(width) {
            let t = base + j;
            let tx = if t.is_multiple_of(2) {
                (t / 2) % n == id
            } else if self.participates_saf && t >= self.s {
                self.schedule.transmits(self.id.0, self.saf_position(t))
            } else {
                false
            };
            if tx {
                bits |= 1u64 << j;
            }
        }
        Some(TxWord::forever(bits))
    }
}

/// One equivalence class of `wakeup_with_s` stations. A wake batch shares
/// `σ`, hence SAF participation; even slots stay O(log runs) (at most the
/// slot's round-robin owner transmits), odd slots are one
/// [`TxTally::record_members`] sweep. Hints take the minimum of the
/// round-robin bound (closed form over the member set) and a budgeted
/// [`AnyMemberScan`] over the SAF schedule, whose window is capped at the
/// round-robin bound — a proven-silent window already yields an exact
/// `At(rr_slot)` answer, and a budget stop yields a `Never(Until::Slot(…))`
/// re-query point strictly past `after`.
struct WwsClass {
    members: Members,
    n: u32,
    s: Slot,
    participates_saf: bool,
    schedule: Arc<DoublingSchedule>,
    scan: AnyMemberScan,
}

impl WwsClass {
    /// First odd global slot `≥ s` — SAF position 0.
    fn first_odd(&self) -> Slot {
        self.s + (self.s + 1) % 2
    }

    /// Smallest even slot `2p ≥ after` whose round-robin owner `p mod n` is
    /// a member — the class counterpart of the station's `next_congruent`.
    fn rr_slot(&self, after: Slot) -> Slot {
        let n = u64::from(self.n);
        let p0 = after.div_ceil(2);
        let r = (p0 % n) as u32;
        let p = match self.members.next_at_or_after(r) {
            Some(x) if u64::from(x) < n => p0 + u64::from(x - r),
            _ => {
                let m0 = self.members.first().expect("class has members");
                p0 + (n - u64::from(r)) + u64::from(m0)
            }
        };
        2 * p
    }
}

impl ClassStation for WwsClass {
    fn weight(&self) -> u64 {
        self.members.count()
    }

    fn wake(&mut self, sigma: Slot) {
        self.participates_saf = sigma == self.s;
    }

    fn act(&mut self, t: Slot, tally: &mut TxTally) {
        if t.is_multiple_of(2) {
            let owner = ((t / 2) % u64::from(self.n)) as u32;
            if self.members.contains(owner) {
                tally.push(StationId(owner));
            }
        } else if self.participates_saf && t >= self.s {
            let first_odd = self.first_odd();
            let (schedule, p) = (&self.schedule, (t - first_odd) / 2);
            tally.record_members(&self.members, |u| schedule.transmits(u, p));
        }
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let rr_slot = self.rr_slot(after);
        if !self.participates_saf {
            return TxHint::at(rr_slot);
        }
        let first_odd = self.first_odd();
        let q0 = (after.max(first_odd) - first_odd).div_ceil(2);
        // Odd slots below rr_slot are the only SAF positions that can beat
        // the round-robin turn; a window proven silent means rr_slot is it.
        let q_lim = (rr_slot.saturating_sub(first_odd)).div_ceil(2);
        match self
            .scan
            .next_hit(&self.schedule, &self.members, q0, q_lim, CLASS_SCAN_BUDGET)
        {
            Scan::Hit(q) => TxHint::at(first_odd + 2 * q),
            Scan::Never => TxHint::at(rr_slot),
            Scan::SilentBelow(b) if b >= q_lim => TxHint::at(rr_slot),
            // Budget stop inside the window: silence holds strictly past
            // `after` (b > q0 ⇒ first_odd + 2b ≥ after + 2), and the bound
            // stays below rr_slot, so the round-robin turn is not skipped.
            Scan::SilentBelow(b) => TxHint::Never(Until::Slot(first_odd + 2 * b)),
        }
    }

    fn remove_member(&mut self, id: StationId) -> MemberRemoval {
        // Both sub-schedules are per-member, so removal only shrinks the
        // set. The scan memo may describe the departed member's hits, so
        // restart it — at worst a re-proved window, never a missed turn.
        if self.members.remove(id.0) {
            self.scan = AnyMemberScan::default();
            MemberRemoval::Removed {
                emptied: self.members.is_empty(),
            }
        } else {
            MemberRemoval::NotMember
        }
    }
}

impl Protocol for WakeupWithS {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(WwsStation {
            id,
            n: self.n,
            s: self.s,
            participates_saf: false,
            schedule: Arc::clone(&self.schedule),
            saf_cache: NextPositionCache::default(),
        })
    }

    fn class_station(&self, members: &Members, _run_seed: u64) -> Option<Box<dyn ClassStation>> {
        Some(Box::new(WwsClass {
            members: members.clone(),
            n: self.n,
            s: self.s,
            participates_saf: false,
            schedule: Arc::clone(&self.schedule),
            scan: AnyMemberScan::default(),
        }))
    }

    fn name(&self) -> String {
        format!("wakeup-with-s(n={}, s={})", self.n, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn sim(n: u32) -> Simulator {
        Simulator::new(SimConfig::new(n))
    }

    #[test]
    fn solves_for_all_k_regimes() {
        let n = 64u32;
        for k in [1u32, 2, 4, 8, 16, 32, 64] {
            let p = WakeupWithS::new(n, 0, FamilyProvider::default());
            let chosen: Vec<StationId> = (0..k).map(StationId).collect();
            let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "k={k}");
        }
    }

    #[test]
    fn solves_with_late_arrivals_via_round_robin() {
        // Adversary wakes one station at s, the rest later: SAF only has the
        // first station (succeeds quickly), but even if SAF were broken,
        // round-robin on even slots guarantees completion within 2n.
        let n = 32u32;
        let p = WakeupWithS::new(n, 7, FamilyProvider::default());
        let pattern = WakePattern::staggered(&ids(&[30, 1, 16]), 7, 5).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        assert!(out.solved());
        assert!(out.latency().unwrap() <= 2 * u64::from(n));
    }

    #[test]
    fn odd_s_even_s_alignment() {
        // The SAF position computation must agree for odd and even s.
        let n = 16u32;
        for s in [0u64, 1, 2, 3, 10, 11] {
            let p = WakeupWithS::new(n, s, FamilyProvider::default());
            let pattern = WakePattern::simultaneous(&ids(&[3, 9, 14]), s).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "s={s}");
        }
    }

    #[test]
    fn worst_case_latency_bounded_by_2n() {
        // Round-robin component: within 2n slots every station owns an even
        // slot, so any pattern solves by then.
        let n = 24u32;
        let p = WakeupWithS::new(n, 0, FamilyProvider::default());
        for seed in 0..5u64 {
            let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
            let chosen = IdChoice::Random.pick(n, 6, &mut rng);
            let pattern = WakePattern::uniform_window(&chosen, 0, 40, &mut rng).unwrap();
            let out = sim(n).run(&p, &pattern, seed).unwrap();
            assert!(out.solved());
            assert!(
                out.latency().unwrap() <= 2 * u64::from(n),
                "latency {} > 2n",
                out.latency().unwrap()
            );
        }
    }

    #[test]
    fn small_k_beats_round_robin_alone() {
        // For k = 2 on a large n, wakeup_with_s should finish much faster
        // than n/2 slots (where round-robin alone would average).
        let n = 1024u32;
        let p = WakeupWithS::new(n, 0, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&[100, 900]), 0).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        let lat = out.latency().unwrap();
        assert!(lat < u64::from(n) / 2, "latency {lat} not sublinear");
    }

    #[test]
    fn class_engine_matches_concrete() {
        // Class aggregation must be invisible in the outcome: both parities
        // of s, participant batches and latecomers, transcript included.
        let n = 64u32;
        for s in [0u64, 7, 20] {
            let p = WakeupWithS::new(n, s, FamilyProvider::random_with_seed(3));
            let mut wakes = vec![
                (StationId(2), s),
                (StationId(9), s),
                (StationId(33), s),
                (StationId(60), s),
            ];
            wakes.push((StationId(5), s + 3));
            wakes.push((StationId(48), s + 9));
            let pattern = WakePattern::new(wakes).unwrap();
            let cfg = SimConfig::new(n).with_max_slots(2_000).with_transcript();
            let concrete = Simulator::new(cfg.clone()).run(&p, &pattern, 0).unwrap();
            let classed = Simulator::new(cfg.with_classes())
                .run(&p, &pattern, 0)
                .unwrap();
            assert_eq!(concrete.first_success, classed.first_success, "s={s}");
            assert_eq!(concrete.winner, classed.winner, "s={s}");
            assert_eq!(concrete.transmissions, classed.transmissions, "s={s}");
            assert_eq!(concrete.per_station_tx, classed.per_station_tx, "s={s}");
            assert_eq!(concrete.transcript, classed.transcript, "s={s}");
            assert!(classed.peak_units <= 3, "s={s}");
        }
    }

    #[test]
    fn class_block_wake_floor_is_one_unit() {
        // A contiguous simultaneous floor — the mega-sweep shape — is a
        // single class unit regardless of k.
        let n = 256u32;
        let p = WakeupWithS::new(n, 4, FamilyProvider::random_with_seed(3));
        let pattern = WakePattern::range(0, n, 4).unwrap();
        let cfg = SimConfig::new(n).with_max_slots(4_000);
        let concrete = Simulator::new(cfg.clone()).run(&p, &pattern, 0).unwrap();
        let classed = Simulator::new(cfg.with_classes())
            .run(&p, &pattern, 0)
            .unwrap();
        assert_eq!(concrete.first_success, classed.first_success);
        assert_eq!(concrete.winner, classed.winner);
        assert_eq!(concrete.transmissions, classed.transmissions);
        assert_eq!(classed.peak_units, 1);
    }

    #[test]
    fn no_transmissions_before_s() {
        // Stations only act once awake; latency is measured from s.
        let n = 16u32;
        let p = WakeupWithS::new(n, 100, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&[5]), 100).unwrap();
        let cfg = SimConfig::new(n).with_transcript();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        let tr = out.transcript.as_ref().unwrap();
        assert!(tr.records().first().unwrap().slot >= 100);
        assert!(out.solved());
    }
}
