//! `wakeup_with_s` — the complete Scenario A algorithm (§3):
//! interleave round-robin with `select_among_the_first`.
//!
//! With a global clock, interleaving is parity-based: **even** global slots
//! run round-robin (position `t/2`), **odd** global slots run
//! `select_among_the_first` (position = number of odd slots since `s`).
//! Interleaving needs no knowledge of `k` and costs a factor 2.
//!
//! The resulting worst-case time is the minimum of the two components:
//! `Θ(min{n − k + 1, k log(n/k) + k}) = Θ(k log(n/k) + 1)`, which is optimal
//! (Theorem 2.1 for `k > n/c`; Clementi–Monti–Silvestri for `k ≤ n/64`).

use crate::family_provider::FamilyProvider;
use crate::select_among_first::{DoublingSchedule, NextPositionCache};
use mac_sim::{Action, Protocol, Slot, Station, StationId, TxHint};
use selectors::math::next_congruent;
use std::sync::Arc;

/// The Scenario A algorithm: round-robin ⊕ select-among-the-first.
#[derive(Clone, Debug)]
pub struct WakeupWithS {
    n: u32,
    s: Slot,
    schedule: Arc<DoublingSchedule>,
}

impl WakeupWithS {
    /// Build for `n` stations with known first-wake-up slot `s`.
    pub fn new(n: u32, s: Slot, provider: FamilyProvider) -> Self {
        let top = crate::select_among_first::full_doubling_top(n);
        WakeupWithS {
            n,
            s,
            schedule: Arc::new(DoublingSchedule::new(&provider, n, top)),
        }
    }

    /// Like [`new`](Self::new), but the select-among-the-first schedule
    /// comes out of `cache` — built once per `(n, provider)` per ensemble
    /// and shared across runs.
    pub fn cached(
        n: u32,
        s: Slot,
        provider: &FamilyProvider,
        cache: &crate::cache::ConstructionCache,
    ) -> Self {
        let top = crate::select_among_first::full_doubling_top(n);
        WakeupWithS {
            n,
            s,
            schedule: cache.schedule(provider, n, top),
        }
    }

    /// The known starting slot.
    pub fn s(&self) -> Slot {
        self.s
    }
}

struct WwsStation {
    id: StationId,
    n: u32,
    s: Slot,
    participates_saf: bool,
    schedule: Arc<DoublingSchedule>,
    /// Memoized SAF `next_position` answer (see [`NextPositionCache`]).
    saf_cache: NextPositionCache,
}

impl WwsStation {
    /// Number of odd global slots in `[s, t]` minus one — the SAF schedule
    /// position of odd slot `t ≥ s`. All participants woke at `s`, so they
    /// agree on this position.
    fn saf_position(&self, t: Slot) -> u64 {
        debug_assert!(t % 2 == 1 && t >= self.s);
        let first_odd = self.s + (self.s + 1) % 2; // s if odd, s+1 if even
        debug_assert!(first_odd % 2 == 1);
        (t - first_odd) / 2
    }
}

impl Station for WwsStation {
    fn wake(&mut self, sigma: Slot) {
        self.participates_saf = sigma == self.s;
    }

    fn act(&mut self, t: Slot) -> Action {
        if t.is_multiple_of(2) {
            // Even slots: round-robin on position t/2.
            Action::from_bool((t / 2) % u64::from(self.n) == u64::from(self.id.0))
        } else if self.participates_saf && t >= self.s {
            Action::from_bool(self.schedule.transmits(self.id.0, self.saf_position(t)))
        } else {
            Action::Listen
        }
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // Round-robin component: the smallest even slot 2p ≥ after with
        // p ≡ id (mod n), computed in O(1).
        let rr_slot =
            2 * next_congruent(after.div_ceil(2), u64::from(self.id.0), u64::from(self.n));

        // Select-among-the-first component: odd slots, schedule positions
        // counted in odd slots since s.
        let saf_slot = if self.participates_saf {
            let first_odd = self.s + (self.s + 1) % 2;
            let t0 = after.max(first_odd);
            let q0 = (t0 - first_odd).div_ceil(2);
            self.saf_cache
                .query(&self.schedule, self.id.0, q0)
                .map(|q| first_odd + 2 * q)
        } else {
            None
        };

        match saf_slot {
            Some(saf) => TxHint::at(rr_slot.min(saf)),
            None => TxHint::at(rr_slot),
        }
    }
}

impl Protocol for WakeupWithS {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(WwsStation {
            id,
            n: self.n,
            s: self.s,
            participates_saf: false,
            schedule: Arc::clone(&self.schedule),
            saf_cache: NextPositionCache::default(),
        })
    }

    fn name(&self) -> String {
        format!("wakeup-with-s(n={}, s={})", self.n, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn sim(n: u32) -> Simulator {
        Simulator::new(SimConfig::new(n))
    }

    #[test]
    fn solves_for_all_k_regimes() {
        let n = 64u32;
        for k in [1u32, 2, 4, 8, 16, 32, 64] {
            let p = WakeupWithS::new(n, 0, FamilyProvider::default());
            let chosen: Vec<StationId> = (0..k).map(StationId).collect();
            let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "k={k}");
        }
    }

    #[test]
    fn solves_with_late_arrivals_via_round_robin() {
        // Adversary wakes one station at s, the rest later: SAF only has the
        // first station (succeeds quickly), but even if SAF were broken,
        // round-robin on even slots guarantees completion within 2n.
        let n = 32u32;
        let p = WakeupWithS::new(n, 7, FamilyProvider::default());
        let pattern = WakePattern::staggered(&ids(&[30, 1, 16]), 7, 5).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        assert!(out.solved());
        assert!(out.latency().unwrap() <= 2 * u64::from(n));
    }

    #[test]
    fn odd_s_even_s_alignment() {
        // The SAF position computation must agree for odd and even s.
        let n = 16u32;
        for s in [0u64, 1, 2, 3, 10, 11] {
            let p = WakeupWithS::new(n, s, FamilyProvider::default());
            let pattern = WakePattern::simultaneous(&ids(&[3, 9, 14]), s).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "s={s}");
        }
    }

    #[test]
    fn worst_case_latency_bounded_by_2n() {
        // Round-robin component: within 2n slots every station owns an even
        // slot, so any pattern solves by then.
        let n = 24u32;
        let p = WakeupWithS::new(n, 0, FamilyProvider::default());
        for seed in 0..5u64 {
            let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
            let chosen = IdChoice::Random.pick(n, 6, &mut rng);
            let pattern = WakePattern::uniform_window(&chosen, 0, 40, &mut rng).unwrap();
            let out = sim(n).run(&p, &pattern, seed).unwrap();
            assert!(out.solved());
            assert!(
                out.latency().unwrap() <= 2 * u64::from(n),
                "latency {} > 2n",
                out.latency().unwrap()
            );
        }
    }

    #[test]
    fn small_k_beats_round_robin_alone() {
        // For k = 2 on a large n, wakeup_with_s should finish much faster
        // than n/2 slots (where round-robin alone would average).
        let n = 1024u32;
        let p = WakeupWithS::new(n, 0, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&[100, 900]), 0).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        let lat = out.latency().unwrap();
        assert!(lat < u64::from(n) / 2, "latency {lat} not sublinear");
    }

    #[test]
    fn no_transmissions_before_s() {
        // Stations only act once awake; latency is measured from s.
        let n = 16u32;
        let p = WakeupWithS::new(n, 100, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&[5]), 100).unwrap();
        let cfg = SimConfig::new(n).with_transcript();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        let tr = out.transcript.as_ref().unwrap();
        assert!(tr.records().first().unwrap().slot >= 100);
        assert!(out.solved());
    }
}
