//! `wakeup(n)` — the Scenario C algorithm (§5): contention resolution with
//! no knowledge of `s` or `k`, in `O(k log n log log n)` slots.
//!
//! Every station is provided with the same [`WakingMatrix`]; a station `u`
//! woken at slot `σ` executes protocol `wakeup(u, σ)` (§5.1):
//!
//! ```text
//! t' ← µ(σ)                        // wait for the next window boundary
//! for i = 1 to log n:              // walk the rows top-down
//!     for t = t' to t' + m_i − 1:  // dwell m_i slots in row i
//!         j ← t mod ℓ              // circular column scan
//!         if u ∈ M_{i,j}: transmit at t
//!     t' ← t' + m_i
//! ```
//!
//! Stations woken at different times occupy different rows of the same
//! column (the paper's Figure 2); the window wait `µ(σ)` enforces property
//! P1 (row sets constant within a window), which the density sweep `ρ(j)`
//! converts into a guaranteed low-contention slot per window (Lemma 5.4).
//!
//! Theorem 5.3: success within `O(k log n log log n)` slots of `s`.
//!
//! The paper's protocol *ends* after the last row (`i = log n`); the
//! analysis guarantees success long before. Because our matrix is a sampled
//! ensemble member rather than a certified waking matrix, a run can in
//! principle exhaust the scan; [`WakeupN::with_restart`] optionally makes
//! stations restart the walk (off by default to match the paper — capped
//! runs surface as censored samples in the experiments instead).

use crate::select_among_first::CLASS_SCAN_BUDGET;
use crate::waking_matrix::{MatrixParams, WakingMatrix};
use mac_sim::{
    Action, ClassStation, MemberRemoval, Members, Protocol, Slot, Station, StationId, TxHint,
    TxTally, TxWord, Until,
};
use selectors::prf::GapScanner;
use std::sync::Arc;

/// The Scenario C protocol `wakeup(n)`.
#[derive(Clone, Debug)]
pub struct WakeupN {
    matrix: Arc<WakingMatrix>,
    restart: bool,
}

impl WakeupN {
    /// Build from matrix parameters.
    pub fn new(params: MatrixParams) -> Self {
        WakeupN {
            matrix: Arc::new(WakingMatrix::new(params)),
            restart: false,
        }
    }

    /// Build over an existing (shared) matrix.
    pub fn with_matrix(matrix: Arc<WakingMatrix>) -> Self {
        WakeupN {
            matrix,
            restart: false,
        }
    }

    /// Like [`new`](Self::new), but the waking matrix comes out of `cache` —
    /// built once per parameter set per ensemble and shared across runs.
    pub fn cached(params: MatrixParams, cache: &crate::cache::ConstructionCache) -> Self {
        WakeupN::with_matrix(cache.matrix(params))
    }

    /// Make stations restart the row walk after exhausting the matrix
    /// (liveness extension beyond the paper's protocol).
    pub fn with_restart(mut self, restart: bool) -> Self {
        self.restart = restart;
        self
    }

    /// The shared waking matrix.
    pub fn matrix(&self) -> &Arc<WakingMatrix> {
        &self.matrix
    }
}

struct WakeupNStation {
    id: StationId,
    matrix: Arc<WakingMatrix>,
    restart: bool,
    /// Slot at which the station becomes operative (µ(σ)).
    mu: Slot,
    /// First walk's start µ(σ) — unlike `mu`, never advanced by restarts;
    /// the anchor for the stateless hint geometry.
    mu0: Slot,
    /// Current row (1-based); rows() + 1 once the scan is done.
    row: u32,
    /// First slot after the current row's dwell.
    row_end: Slot,
    /// Cached hint-scan segment: the row the last `next_transmission`
    /// landed in, as global slots `[start, end)`, with its PRF row prefix.
    /// Queries are non-decreasing, so the cache is valid until the clock
    /// leaves the row.
    scan: Option<RowScan>,
}

/// One row's scan state (see [`WakeupNStation::scan`]).
struct RowScan {
    row: u32,
    start: Slot,
    end: Slot,
    scanner: GapScanner,
}

impl Station for WakeupNStation {
    fn wake(&mut self, sigma: Slot) {
        self.mu = self.matrix.mu(sigma);
        self.mu0 = self.mu;
        self.row = 1;
        self.row_end = self.mu + self.matrix.dwell(1);
    }

    fn act(&mut self, t: Slot) -> Action {
        if t < self.mu {
            return Action::Listen; // waiting for the window boundary
        }
        // Advance rows (amortized O(1): each row advances once).
        while t >= self.row_end {
            if self.row >= self.matrix.rows() {
                if self.restart {
                    // Re-enter the walk at the next window boundary.
                    self.mu = self.matrix.mu(self.row_end);
                    self.row = 1;
                    self.row_end = self.mu + self.matrix.dwell(1);
                    if t < self.mu {
                        return Action::Listen;
                    }
                    continue;
                }
                self.row = self.matrix.rows() + 1;
                return Action::Listen; // scan over (paper's protocol ends)
            }
            self.row += 1;
            self.row_end += self.matrix.dwell(self.row);
        }
        Action::from_bool(self.matrix.member(self.row, t, self.id.0))
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // Stateless walk geometry anchored at µ(σ): the stateful `row`
        // cursor is untouched, and `act` tolerates jumps. Restart walks
        // tile contiguously (the total scan is a multiple of the window
        // length, so each walk ends exactly on the next walk's µ), which
        // makes `delta mod total` the position inside the current walk.
        let m = &self.matrix;
        let from = after.max(self.mu0);
        // Queries are non-decreasing, so the row segment and its PRF prefix
        // from the previous query usually still apply (collision re-arms
        // hit the same row over and over).
        let cached = matches!(&self.scan, Some(s) if s.start <= from && from < s.end);
        if !cached {
            let total = m.total_scan();
            let delta = from - self.mu0;
            if !self.restart && delta >= total {
                // Scan exhausted: the paper's protocol ends; the station
                // is silent forever.
                return TxHint::never();
            }
            let delta_in_walk = delta % total;
            let walk_start = from - delta_in_walk;
            let row = m
                .row_at_offset(delta_in_walk)
                .expect("delta_in_walk < total_scan has a row");
            let (row_start, row_end) = m.row_span(row);
            self.scan = Some(RowScan {
                row,
                start: walk_start + row_start,
                end: walk_start + row_end,
                scanner: m.row_scanner(row, self.id.0),
            });
        }
        let seg = self.scan.as_ref().expect("segment cached above");
        // Structure-aware per-row skip: jump to the next PRF membership in
        // the *current* row only (expected O(2^{i+ρ}) cheap coins). If the
        // row has no further hit, answer "silent until the row boundary"
        // and let the engine call back there — bounded lookahead instead of
        // scanning exponentially longer later rows that a success may make
        // moot.
        match m.next_member_scanned(&seg.scanner, seg.row, from, seg.end) {
            Some(t) => TxHint::at(t),
            None if !self.restart && seg.row == m.rows() => TxHint::never(),
            None => TxHint::Never(Until::Slot(seg.end)),
        }
    }

    fn fill_tx_word(&mut self, base: Slot, width: u32) -> Option<TxWord> {
        // The walk is oblivious (restarts included: a deterministic function
        // of σ and t), so the tile is an unconditional fact. Same stateless
        // geometry as `next_transmission`; the PRF row prefix is hoisted
        // once per row span inside the tile.
        let m = &self.matrix;
        let total = m.total_scan();
        let mut bits = 0u64;
        let mut j = 0u64;
        while j < u64::from(width) {
            let t = base + j;
            if t < self.mu0 {
                j += 1; // waiting for the window boundary
                continue;
            }
            let delta = t - self.mu0;
            if !self.restart && delta >= total {
                break; // scan over: silent for the rest of the tile
            }
            let delta_in_walk = delta % total;
            let row = m
                .row_at_offset(delta_in_walk)
                .expect("delta_in_walk < total_scan has a row");
            let (_, row_end) = m.row_span(row);
            let seg_end = (t - delta_in_walk + row_end).min(base + u64::from(width));
            let scanner = m.row_scanner(row, self.id.0);
            let mut s = t;
            while let Some(hit) = m.next_member_scanned(&scanner, row, s, seg_end) {
                bits |= 1u64 << (hit - base);
                s = hit + 1;
            }
            j = seg_end - base;
        }
        Some(TxWord::forever(bits))
    }
}

/// One equivalence class of `wakeup(n)` stations. A wake batch shares `σ`,
/// hence `µ(σ)` and the entire row-walk geometry — only the PRF membership
/// test depends on the station id, so one unit carries the whole batch and
/// per-slot work is a single [`TxTally::record_members`] sweep. Hints scan
/// the current row slot by slot for **any** member hit under a membership
/// budget; a proven-silent prefix is remembered (queries are monotone), a
/// budget stop answers `Never(Until::Slot(bound))` strictly past `after`,
/// and a hit-free final row without restart is permanent silence.
struct WakeupNClass {
    members: Members,
    matrix: Arc<WakingMatrix>,
    restart: bool,
    mu: Slot,
    mu0: Slot,
    row: u32,
    row_end: Slot,
    /// Every slot in `[mu0, proven)` is proven free of member transmissions
    /// (or was a memoized hit since passed).
    proven: Slot,
    /// Memoized earliest hit at or after `proven`, if found.
    hit: Option<Slot>,
}

impl ClassStation for WakeupNClass {
    fn weight(&self) -> u64 {
        self.members.count()
    }

    fn wake(&mut self, sigma: Slot) {
        self.mu = self.matrix.mu(sigma);
        self.mu0 = self.mu;
        self.row = 1;
        self.row_end = self.mu + self.matrix.dwell(1);
        self.proven = self.mu;
        self.hit = None;
    }

    fn act(&mut self, t: Slot, tally: &mut TxTally) {
        if t < self.mu {
            return; // waiting for the window boundary
        }
        // Same amortized row advance as the concrete station.
        while t >= self.row_end {
            if self.row >= self.matrix.rows() {
                if self.restart {
                    self.mu = self.matrix.mu(self.row_end);
                    self.row = 1;
                    self.row_end = self.mu + self.matrix.dwell(1);
                    if t < self.mu {
                        return;
                    }
                    continue;
                }
                self.row = self.matrix.rows() + 1;
                return; // scan over (paper's protocol ends)
            }
            self.row += 1;
            self.row_end += self.matrix.dwell(self.row);
        }
        let (m, row) = (&self.matrix, self.row);
        tally.record_members(&self.members, |u| m.member(row, t, u));
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let m = &self.matrix;
        let from = after.max(self.mu0);
        if let Some(h) = self.hit {
            if h >= from {
                return TxHint::at(h);
            }
            self.hit = None; // query point moved past the memoized hit
        }
        // Stateless walk geometry anchored at µ(σ), as in the concrete
        // station: restart walks tile contiguously, so `delta mod total`
        // locates the position inside the current walk.
        let start = from.max(self.proven);
        let total = m.total_scan();
        let delta = start - self.mu0;
        if !self.restart && delta >= total {
            return TxHint::never();
        }
        let delta_in_walk = delta % total;
        let walk_start = start - delta_in_walk;
        let row = m
            .row_at_offset(delta_in_walk)
            .expect("delta_in_walk < total_scan has a row");
        let (_, row_end) = m.row_span(row);
        let seg_end = walk_start + row_end;
        // Budgeted any-member scan over the rest of the current row; later
        // rows are left to re-queries at the boundary, matching the
        // concrete station's bounded per-row lookahead.
        let mut budget = CLASS_SCAN_BUDGET;
        let mut t = start;
        while t < seg_end {
            if budget == 0 && t > from {
                self.proven = t;
                return TxHint::Never(Until::Slot(t));
            }
            let mut any = false;
            'runs: for &(lo, hi) in self.members.runs() {
                for u in lo..hi {
                    budget = budget.saturating_sub(1);
                    if m.member(row, t, u) {
                        any = true;
                        break 'runs;
                    }
                }
            }
            if any {
                self.proven = t;
                self.hit = Some(t);
                return TxHint::at(t);
            }
            t += 1;
            self.proven = t;
        }
        if !self.restart && row == m.rows() {
            TxHint::never()
        } else {
            TxHint::Never(Until::Slot(seg_end))
        }
    }

    fn remove_member(&mut self, id: StationId) -> MemberRemoval {
        // Walk geometry is batch-shared and unaffected; only the membership
        // sweep shrinks. The proven-silent prefix stays valid (removal can
        // only remove transmissions), but the memoized hit may be the
        // departed member's, so drop it.
        if self.members.remove(id.0) {
            self.hit = None;
            MemberRemoval::Removed {
                emptied: self.members.is_empty(),
            }
        } else {
            MemberRemoval::NotMember
        }
    }
}

impl Protocol for WakeupN {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(WakeupNStation {
            id,
            matrix: Arc::clone(&self.matrix),
            restart: self.restart,
            mu: 0,
            mu0: 0,
            row: 1,
            row_end: 0,
            scan: None,
        })
    }

    fn class_station(&self, members: &Members, _run_seed: u64) -> Option<Box<dyn ClassStation>> {
        Some(Box::new(WakeupNClass {
            members: members.clone(),
            matrix: Arc::clone(&self.matrix),
            restart: self.restart,
            mu: 0,
            mu0: 0,
            row: 1,
            row_end: 0,
            proven: 0,
            hit: None,
        }))
    }

    fn name(&self) -> String {
        format!(
            "wakeup(n={}, c={}, seed={})",
            self.matrix.n(),
            self.matrix.c(),
            self.matrix.seed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn sim(n: u32) -> Simulator {
        Simulator::new(SimConfig::new(n))
    }

    #[test]
    fn station_follows_the_matrix_walk_exactly() {
        // The stateful station must agree with the stateless predicate
        // WakingMatrix::transmits on every slot.
        let p = WakeupN::new(MatrixParams::new(64).with_seed(5));
        let m = Arc::clone(p.matrix());
        let sigma = 7u64;
        let mut st = p.station(StationId(9), 0);
        st.wake(sigma);
        for t in sigma..sigma + 2_000 {
            let expected = m.transmits(9, sigma, t);
            assert_eq!(
                st.act(t).is_transmit(),
                expected,
                "divergence at t={t} (σ={sigma})"
            );
        }
    }

    #[test]
    fn solves_simultaneous_wakeups() {
        let n = 64u32;
        for k in [1usize, 2, 4, 8] {
            let p = WakeupN::new(MatrixParams::new(n));
            let chosen: Vec<StationId> = (0..k as u32)
                .map(|i| StationId(i * (n / k as u32)))
                .collect();
            let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "k={k}");
        }
    }

    #[test]
    fn solves_staggered_and_burst_arrivals() {
        let n = 128u32;
        let p = WakeupN::new(MatrixParams::new(n));
        let chosen = ids(&[3, 17, 40, 63, 90, 101, 115, 127]);
        for gap in [1u64, 9, 77] {
            let pattern = WakePattern::staggered(&chosen, 5, gap).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "staggered gap={gap}");
        }
        let pattern = WakePattern::batches(&chosen, 0, 50, &[4, 4]).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        assert!(out.solved(), "batches");
    }

    #[test]
    fn latency_scales_with_k_log_n_log_log_n_not_n() {
        // For k = 2 on n = 1024, the bound is O(2 · 10 · 4) ≈ hundreds of
        // slots; assert we stay well below n (which round-robin would need).
        let n = 1024u32;
        let p = WakeupN::new(MatrixParams::new(n));
        let pattern = WakePattern::simultaneous(&ids(&[77, 901]), 0).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        let lat = out.latency().expect("must solve");
        assert!(lat < u64::from(n) / 2, "latency {lat} too large");
    }

    #[test]
    fn solves_from_arbitrary_start_slots() {
        let n = 64u32;
        let p = WakeupN::new(MatrixParams::new(n));
        for s in [0u64, 1, 13, 1000, 54_321] {
            let pattern = WakePattern::simultaneous(&ids(&[2, 33, 60]), s).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "s={s}");
        }
    }

    #[test]
    fn no_transmission_during_window_wait() {
        let n = 256u32;
        let p = WakeupN::new(MatrixParams::new(n));
        let m = Arc::clone(p.matrix());
        // σ chosen strictly inside a window.
        let sigma = 1u64;
        assert!(m.mu(sigma) > sigma);
        let mut st = p.station(StationId(0), 0);
        st.wake(sigma);
        for t in sigma..m.mu(sigma) {
            assert_eq!(
                st.act(t),
                Action::Listen,
                "transmitted while waiting at {t}"
            );
        }
    }

    #[test]
    fn restart_keeps_station_active_after_scan() {
        let n = 4u32; // tiny matrix so the scan ends quickly
        let params = MatrixParams::new(n).with_c(1);
        let m = WakingMatrix::new(params);
        let total = m.total_scan();

        let p_norestart = WakeupN::new(params);
        let mut st = p_norestart.station(StationId(1), 0);
        st.wake(0);
        // After the scan, a non-restarting station is permanently silent.
        let mut any_tx = false;
        for t in 0..total + 200 {
            if st.act(t).is_transmit() && t >= total {
                any_tx = true;
            }
        }
        assert!(!any_tx, "non-restarting station transmitted after its scan");

        let p_restart = WakeupN::new(params).with_restart(true);
        let mut st = p_restart.station(StationId(1), 0);
        st.wake(0);
        let mut post_scan_tx = false;
        for t in 0..4 * total {
            if st.act(t).is_transmit() && t >= total {
                post_scan_tx = true;
            }
        }
        assert!(post_scan_tx, "restarting station stayed silent after scan");
    }

    #[test]
    fn class_engine_matches_concrete() {
        // Batched and staggered wakes, with and without restart: outcomes
        // and transcripts must be bit-identical to the concrete engine.
        let n = 128u32;
        let chosen = ids(&[3, 17, 40, 63, 90, 101, 115, 127]);
        for restart in [false, true] {
            let p = WakeupN::new(MatrixParams::new(n).with_seed(9)).with_restart(restart);
            for pattern in [
                WakePattern::batches(&chosen, 0, 50, &[4, 4]).unwrap(),
                WakePattern::staggered(&chosen, 5, 9).unwrap(),
            ] {
                let cfg = SimConfig::new(n).with_max_slots(5_000).with_transcript();
                let concrete = Simulator::new(cfg.clone()).run(&p, &pattern, 0).unwrap();
                let classed = Simulator::new(cfg.with_classes())
                    .run(&p, &pattern, 0)
                    .unwrap();
                assert_eq!(concrete.first_success, classed.first_success);
                assert_eq!(concrete.winner, classed.winner);
                assert_eq!(concrete.transmissions, classed.transmissions);
                assert_eq!(concrete.per_station_tx, classed.per_station_tx);
                assert_eq!(concrete.transcript, classed.transcript);
                assert!(classed.peak_units <= chosen.len() as u64);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let n = 128u32;
        let mk = || WakeupN::new(MatrixParams::new(n).with_seed(77));
        let pattern = WakePattern::staggered(&ids(&[5, 55, 105]), 3, 21).unwrap();
        let a = sim(n).run(&mk(), &pattern, 0).unwrap();
        let b = sim(n).run(&mk(), &pattern, 0).unwrap();
        assert_eq!(a.first_success, b.first_success);
        assert_eq!(a.winner, b.winner);
    }

    #[test]
    fn works_on_degenerate_universes() {
        for n in [1u32, 2, 3] {
            let p = WakeupN::new(MatrixParams::new(n));
            let pattern = WakePattern::simultaneous(&ids(&[0]), 0).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "n={n}");
        }
    }
}
