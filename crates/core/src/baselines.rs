//! Deterministic comparison baselines.
//!
//! [`LocalDoubling`] is a *behavioural stand-in* for the
//! Chlebus–Gąsieniec–Kowalski–Radzik locally-synchronized wake-up protocol
//! (`O(k log² n)`, ICALP 2005 — reference \[9\] of the paper), which De Marco &
//! Kowalski's Scenario C algorithm claims to beat by a
//! `log n / log log n`-ish factor. The original construction (radio
//! synchronizers) is a paper of its own; what EXP-CHL needs is a faithful
//! *shape*: a deterministic protocol that uses only the station's **local**
//! clock (slots since its own wake-up) and runs doubling
//! strongly-selective structures. See DESIGN.md §4 (substitution 3).
//!
//! Structure: on local position `p`, the station is in *epoch*
//! `i = 1, 2, …` (epoch `i` lasts `c·2^i·log²n` positions); within epoch `i`
//! it transmits with PRF-density `2^{-i}` (per-station deterministic coins
//! shared via the protocol seed). Doubling epochs make the local densities
//! of concurrently awake stations straddle the `Θ(1/|X|)` sweet spot for
//! `Ω(2^i log² n)` of the overlapping slots, which is the same mechanism the
//! `O(k log² n)` bound formalizes. The protocol is deterministic given its
//! seed, uses no global-clock information, and measurably exhibits the
//! `k·log² n` growth (EXP-CHL) — slower than `wakeup(n)`'s
//! `k log n log log n` by the factor the paper claims.

use mac_sim::{Action, Protocol, Slot, Station, StationId, TxHint, Until};
use selectors::math::log_n;
use selectors::prf::{coin_pow2, GapScanner};

/// Locally-synchronized deterministic doubling baseline (`O(k log² n)`
/// shape).
#[derive(Clone, Copy, Debug)]
pub struct LocalDoubling {
    n: u32,
    /// Epoch-length constant (default 1: epoch `i` lasts `2^i·log²n` slots).
    pub c: u32,
    seed: u64,
}

impl LocalDoubling {
    /// Build the baseline for `n` stations (seed 0, `c = 1`).
    pub fn new(n: u32) -> Self {
        assert!(n >= 1);
        LocalDoubling { n, c: 1, seed: 0 }
    }

    /// Set the schedule seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the epoch-length constant.
    pub fn with_c(mut self, c: u32) -> Self {
        assert!(c >= 1);
        self.c = c;
        self
    }

    /// Epoch length for epoch `i` (1-based): `c·2^i·log² n`.
    pub fn epoch_len(&self, i: u32) -> u64 {
        let log2 = u64::from(log_n(u64::from(self.n)));
        u64::from(self.c) * (1u64 << i.min(62)) * log2 * log2
    }

    /// Number of epochs before the density floor `2^{-log n}` is reached;
    /// after the last epoch the schedule cycles through it again.
    pub fn epochs(&self) -> u32 {
        log_n(u64::from(self.n))
    }
}

struct LocalDoublingStation {
    id: StationId,
    proto: LocalDoubling,
    sigma: Slot,
}

impl LocalDoublingStation {
    /// The epoch of local position `p` plus the local position at which it
    /// ends (1-based; clamped at the last epoch, whose end is `u64::MAX`).
    fn epoch_span(&self, p: u64) -> (u32, u64) {
        let mut acc = 0u64;
        for i in 1..=self.proto.epochs() {
            acc += self.proto.epoch_len(i);
            if p < acc {
                return (i, acc);
            }
        }
        (self.proto.epochs(), u64::MAX)
    }

    /// The epoch of local position `p`.
    fn epoch(&self, p: u64) -> u32 {
        self.epoch_span(p).0
    }
}

impl Station for LocalDoublingStation {
    fn wake(&mut self, sigma: Slot) {
        self.sigma = sigma;
    }

    fn act(&mut self, t: Slot) -> Action {
        let p = t - self.sigma; // LOCAL clock only
        let i = self.epoch(p);
        // Deterministic density-2^{-i} coin, keyed by the *global* slot so
        // that overlapping stations see decorrelated (but shared-seed)
        // schedules. The station itself derives t = σ + p from local data.
        // Argument order (station, epoch, slot) keeps the scan variable
        // last, matching the GapScanner prefix in `next_transmission`.
        Action::from_bool(coin_pow2(
            self.proto.seed,
            u64::from(self.id.0),
            u64::from(i),
            t,
            i,
        ))
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // The schedule is an oblivious PRF coin per slot (density 2^{-i} in
        // epoch i), so the next transmission is found by jumping over the
        // pseudorandom gap — expected 2^i coins on a per-(station, epoch)
        // prefix. Deep epochs make the gap (and the worst case) large, so
        // the scan is capped: past the horizon the station answers "silent
        // until the cap" and lets the engine call back there, instead of
        // forcing the whole run dense.
        const SCAN_CAP: u64 = 1 << 16;
        let cap_end = after.saturating_add(SCAN_CAP);
        let mut t = after;
        while t < cap_end {
            // One scan segment per epoch: fixed density, one PRF prefix.
            let (i, end_local) = self.epoch_span(t - self.sigma);
            let seg_end = self.sigma.saturating_add(end_local).min(cap_end);
            let scanner = GapScanner::new(self.proto.seed, u64::from(self.id.0), u64::from(i));
            if let Some(hit) = scanner.next_set(t, seg_end, |_| i) {
                return TxHint::at(hit);
            }
            t = seg_end;
        }
        TxHint::Never(Until::Slot(cap_end))
    }
}

impl Protocol for LocalDoubling {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(LocalDoublingStation {
            id,
            proto: *self,
            sigma: 0,
        })
    }

    fn name(&self) -> String {
        format!("local-doubling(n={}, c={})", self.n, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    #[test]
    fn epoch_lengths_double() {
        let p = LocalDoubling::new(256);
        assert_eq!(p.epoch_len(2), 2 * p.epoch_len(1));
        assert_eq!(p.epoch_len(5), 8 * p.epoch_len(2));
        assert_eq!(p.epochs(), 8);
    }

    #[test]
    fn solves_simultaneous_and_staggered() {
        let n = 64u32;
        let p = LocalDoubling::new(n);
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(200_000));
        let pattern = WakePattern::simultaneous(&ids(&[3, 30, 60]), 0).unwrap();
        assert!(sim.run(&p, &pattern, 0).unwrap().solved());
        let pattern = WakePattern::staggered(&ids(&[3, 30, 60]), 0, 40).unwrap();
        assert!(sim.run(&p, &pattern, 0).unwrap().solved());
    }

    #[test]
    fn single_station_succeeds_in_first_epoch() {
        let n = 256u32;
        let p = LocalDoubling::new(n);
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(100_000));
        let pattern = WakePattern::simultaneous(&ids(&[100]), 17).unwrap();
        let out = sim.run(&p, &pattern, 0).unwrap();
        // Density 1/2 in epoch 1 ⇒ a solo station succeeds within a few slots.
        assert!(out.latency().unwrap() < 64);
    }

    #[test]
    fn uses_only_local_clock() {
        // Shifting the whole pattern in time shifts each station's schedule
        // by exactly the same amount ⇒ identical relative behaviour is NOT
        // expected (the PRF is keyed by global slot), but the protocol must
        // still solve from any start.
        let n = 64u32;
        let p = LocalDoubling::new(n);
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(200_000));
        for s in [0u64, 999, 123_456] {
            let pattern = WakePattern::simultaneous(&ids(&[5, 40]), s).unwrap();
            assert!(sim.run(&p, &pattern, 0).unwrap().solved(), "s={s}");
        }
    }

    #[test]
    fn dwell_structure_is_log_n_over_log_log_n_slower_than_wakeup_n() {
        // The structural content of the EXP-CHL comparison: the time either
        // protocol needs to *reach* contention level 2^i is the cumulative
        // dwell below it — Θ(2^i·log² n) here vs Θ(c·2^i·log n·log log n)
        // for the waking matrix. At n = 2^16 (log n = 16, log log n = 4,
        // c = 2) the ratio is log n / (c·log log n) = 2.
        use crate::waking_matrix::{MatrixParams, WakingMatrix};
        let n: u32 = 1 << 16;
        let base = LocalDoubling::new(n);
        let matrix = WakingMatrix::new(MatrixParams::new(n));
        for i in 3..=10u32 {
            let base_cum: u64 = (1..=i).map(|e| base.epoch_len(e)).sum();
            let ours_cum: u64 = (1..=i).map(|r| matrix.dwell(r)).sum();
            assert!(
                base_cum >= 2 * ours_cum,
                "epoch {i}: baseline cumulative {base_cum} vs matrix {ours_cum}"
            );
        }
    }

    #[test]
    fn slower_than_wakeup_n_on_simultaneous_bursts() {
        // Simulation form of EXP-CHL at a size where the factor is visible:
        // mean over an ensemble of simultaneous k-bursts (the hard case).
        use crate::wakeup_n::WakeupN;
        use crate::waking_matrix::MatrixParams;
        let n = 4096u32;
        let k = 16usize;
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(2_000_000));
        let mut base_total = 0u64;
        let mut ours_total = 0u64;
        for seed in 0..12u64 {
            let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
            let chosen = IdChoice::Random.pick(n, k, &mut rng);
            let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
            let base = LocalDoubling::new(n).with_seed(seed);
            let ours = WakeupN::new(MatrixParams::new(n).with_seed(seed));
            base_total += sim.run(&base, &pattern, seed).unwrap().latency().unwrap();
            ours_total += sim.run(&ours, &pattern, seed).unwrap().latency().unwrap();
        }
        assert!(
            base_total > ours_total,
            "local baseline ({base_total}) unexpectedly beat wakeup(n) ({ours_total})"
        );
    }
}
