//! The **waking matrix** — §5's combinatorial tool for Scenario C.
//!
//! A `(log n × ℓ)` *transmission matrix* `M`, `ℓ = 2c·n·log n·log log n`,
//! whose entries `M_{i,j} ⊆ [n]` are the transmission sets. The paper
//! (Theorem 5.2) proves by the probabilistic method that drawing each
//! membership independently with probability
//!
//! ```text
//! Prob[u ∈ M_{i,j}] = 2^{-(i + ρ(j))},     ρ(j) = j mod log log n
//! ```
//!
//! yields, with probability `1 − n^{-Ω(1)}`, a **waking matrix**: one that
//! isolates some station by the first *well-balanced* round of any admissible
//! wake-up pattern. An explicit construction is left open (§7); we realize
//! the same ensemble through a seeded PRF (`selectors::prf`), so every
//! station evaluates `u ∈ M_{i,j}` in O(1) and all stations agree on the
//! matrix without storing it. See DESIGN.md §4 (substitution 1).
//!
//! The density sweep `ρ(j)` is the key trick: within each **window** of
//! `log log n` consecutive slots, the membership probability of every row is
//! halved slot by slot, so *some* slot in the window hits the sweet spot
//! `1/8 ≤ Σᵢ |S_{i,j}| / 2^{i+ρ(j)} ≤ 2` (Lemma 5.4) regardless of how the
//! adversary distributed stations across rows — at which point a station is
//! isolated with probability ≥ 1/128 (Lemma 5.3).
//!
//! This module contains the matrix itself plus the complete §5.2 analysis
//! vocabulary (windows, `S(j)`/`S_{i,j}` occupancy, conditions **S1**/**S2**,
//! well-balancedness, isolation) and the renderings behind the paper's
//! Figures 1 and 2. The protocol driving stations over the matrix is
//! [`WakeupN`](crate::wakeup_n::WakeupN).

use mac_sim::{Slot, WakePattern};
use selectors::math::{log_log_n, log_n};
use selectors::prf::{coin_pow2, GapScanner};

/// Parameters of a waking matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MatrixParams {
    /// Universe size `n ≥ 1`.
    pub n: u32,
    /// The paper's "sufficiently large constant" `c ≥ 1` scaling both the
    /// row dwell times `m_i = c·2^i·log n·log log n` and the length
    /// `ℓ = 2c·n·log n·log log n`. Default 2 (calibrated empirically; see
    /// EXPERIMENTS.md).
    pub c: u32,
    /// PRF seed selecting the concrete matrix from the random ensemble.
    pub seed: u64,
    /// Enable the within-window density sweep `ρ(j)` (the paper's design).
    /// Disabling it (ablation EXP-ABL-RHO) fixes `ρ ≡ 0`, i.e. row `i`
    /// always has density `2^{-i}` — the design choice whose removal
    /// degrades Scenario C towards the `O(k log² n)` regime.
    pub rho_sweep: bool,
}

impl MatrixParams {
    /// Default parameters for universe size `n` (`c = 2`, seed 0, sweep on).
    pub fn new(n: u32) -> Self {
        MatrixParams {
            n,
            c: 2,
            seed: 0,
            rho_sweep: true,
        }
    }

    /// Disable the `ρ(j)` density sweep (ablation).
    pub fn without_rho_sweep(mut self) -> Self {
        self.rho_sweep = false;
        self
    }

    /// Set the constant `c`.
    pub fn with_c(mut self, c: u32) -> Self {
        assert!(c >= 1);
        self.c = c;
        self
    }

    /// Set the PRF seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The waking matrix: `log n` rows × `ℓ` columns, scanned circularly,
/// entries realized by a seeded PRF.
#[derive(Clone, Debug)]
pub struct WakingMatrix {
    n: u32,
    c: u32,
    seed: u64,
    rho_sweep: bool,
    /// Number of rows, the paper's `log n` (≥ 1).
    rows: u32,
    /// Window length, the paper's `log log n` (≥ 2).
    window: u32,
    /// Matrix length `ℓ = 2c·n·log n·log log n` (a multiple of `window`).
    ell: u64,
    /// Row dwell times `m_i = c·2^i·log n·log log n`, index 0 ↔ row 1.
    dwell: Vec<u64>,
    /// Prefix sums of `dwell`: `cum[i]` = slots spent before entering row
    /// `i+1`; `cum[rows]` = total scan time.
    cum: Vec<u64>,
}

impl WakingMatrix {
    /// Build the matrix for the given parameters.
    pub fn new(params: MatrixParams) -> Self {
        let MatrixParams {
            n,
            c,
            seed,
            rho_sweep,
        } = params;
        assert!(n >= 1, "waking matrix needs n ≥ 1");
        let rows = log_n(u64::from(n));
        let window = log_log_n(u64::from(n));
        let lw = u64::from(rows) * u64::from(window);
        let ell = 2 * u64::from(c) * u64::from(n) * lw;
        let dwell: Vec<u64> = (1..=rows)
            .map(|i| u64::from(c) * (1u64 << i.min(62)) * lw)
            .collect();
        let mut cum = Vec::with_capacity(rows as usize + 1);
        let mut acc = 0u64;
        cum.push(0);
        for &m in &dwell {
            acc += m;
            cum.push(acc);
        }
        WakingMatrix {
            n,
            c,
            seed,
            rho_sweep,
            rows,
            window,
            ell,
            dwell,
            cum,
        }
    }

    /// Universe size `n`.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// The constant `c`.
    pub fn c(&self) -> u32 {
        self.c
    }

    /// The PRF seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of rows (`log n`).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Window length (`log log n`).
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Matrix length `ℓ`.
    pub fn ell(&self) -> u64 {
        self.ell
    }

    /// Row dwell time `m_i` (`i` is 1-based as in the paper).
    pub fn dwell(&self, i: u32) -> u64 {
        assert!(
            (1..=self.rows).contains(&i),
            "row {i} out of 1..={}",
            self.rows
        );
        self.dwell[(i - 1) as usize]
    }

    /// Total scan time `Σᵢ m_i` — after this many slots past `µ(σ)` a
    /// station has walked every row and (per the paper's protocol) stops.
    pub fn total_scan(&self) -> u64 {
        *self.cum.last().unwrap()
    }

    /// The density exponent offset `ρ(j) = j mod log log n`.
    ///
    /// `ℓ` is a multiple of the window length, so `ρ` commutes with the
    /// circular column map: `ρ(t mod ℓ) = t mod window`.
    #[inline]
    pub fn rho(&self, j: Slot) -> u32 {
        if !self.rho_sweep {
            return 0;
        }
        (j % u64::from(self.window)) as u32
    }

    /// `µ(σ) = min{l ≥ σ : l ≡ 0 (mod log log n)}` — the first window
    /// boundary at or after `σ`; stations wait until it before operating.
    #[inline]
    pub fn mu(&self, sigma: Slot) -> Slot {
        let w = u64::from(self.window);
        sigma.div_ceil(w) * w
    }

    /// Membership test `u ∈ M_{i,j}` (`i` 1-based; `j` any slot — reduced
    /// mod `ℓ` internally, matching the circular scan).
    ///
    /// Probability over the ensemble: `2^{-(i + ρ(j))}`. The PRF arguments
    /// are ordered `(row, station, column)` so that the per-`(row, station)`
    /// mixing prefix can be hoisted out of column scans — see
    /// [`next_member`](Self::next_member) and [`selectors::prf::GapScanner`].
    #[inline]
    pub fn member(&self, i: u32, j: Slot, u: u32) -> bool {
        debug_assert!((1..=self.rows).contains(&i));
        if u >= self.n {
            return false;
        }
        let col = j % self.ell;
        let d = i + self.rho(col);
        coin_pow2(self.seed, u64::from(i), u64::from(u), col, d)
    }

    /// The first slot `t ∈ [from, to)` with `u ∈ M_{i, t mod ℓ}` — the
    /// structure-aware jump behind `wakeup(n)`'s sparse hints. One PRF
    /// prefix covers the whole scan, so the expected cost is
    /// `O(min(2^{i+ρ}, to − from))` cheap (2-round) coin evaluations
    /// rather than full 5-round hashes per slot.
    pub fn next_member(&self, i: u32, u: u32, from: Slot, to: Slot) -> Option<Slot> {
        debug_assert!((1..=self.rows).contains(&i));
        if u >= self.n {
            return None;
        }
        self.next_member_scanned(&self.row_scanner(i, u), i, from, to)
    }

    /// The PRF mixing prefix for scans of row `i` by station `u` —
    /// [`GapScanner::coin`]`(col, d)` equals the `member` coin for that
    /// `(row, station)` pair. Cache it across repeated
    /// [`next_member_scanned`](Self::next_member_scanned) calls within one
    /// row (stations re-queried after every polled slot do exactly this).
    #[inline]
    pub fn row_scanner(&self, i: u32, u: u32) -> GapScanner {
        GapScanner::new(self.seed, u64::from(i), u64::from(u))
    }

    /// [`next_member`](Self::next_member) with a caller-held
    /// [`row_scanner`](Self::row_scanner) — avoids re-deriving the prefix
    /// on every re-query.
    pub fn next_member_scanned(
        &self,
        scanner: &GapScanner,
        i: u32,
        from: Slot,
        to: Slot,
    ) -> Option<Slot> {
        if from >= to {
            return None;
        }
        // Column and ρ advance incrementally (ℓ is a multiple of the window
        // length, so both wrap cleanly): two divisions for the whole scan
        // instead of two per coin.
        let w = self.window;
        let mut col = from % self.ell;
        let mut rho = if self.rho_sweep {
            (col % u64::from(w)) as u32
        } else {
            0
        };
        let mut t = from;
        loop {
            if scanner.coin(col, i + rho) {
                return Some(t);
            }
            t += 1;
            if t >= to {
                return None;
            }
            col += 1;
            if col == self.ell {
                col = 0;
            }
            if self.rho_sweep {
                rho += 1;
                if rho == w {
                    rho = 0;
                }
            }
        }
    }

    /// The offset interval `[start, end)` (relative to `µ(σ)`) that row `i`
    /// occupies within one scan (`i` 1-based).
    pub fn row_span(&self, i: u32) -> (u64, u64) {
        assert!(
            (1..=self.rows).contains(&i),
            "row {i} out of 1..={}",
            self.rows
        );
        (self.cum[(i - 1) as usize], self.cum[i as usize])
    }

    /// The row a station occupies `delta` slots after its `µ(σ)`
    /// (1-based), or `None` once the scan is over (`delta ≥ total_scan`).
    pub fn row_at_offset(&self, delta: u64) -> Option<u32> {
        if delta >= self.total_scan() {
            return None;
        }
        // cum is strictly increasing; find i with cum[i] ≤ delta < cum[i+1].
        let i = match self.cum.binary_search(&delta) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        Some(i as u32 + 1)
    }

    /// The row of a station woken at `sigma`, at global slot `t`
    /// (`None` while waiting `t < µ(σ)` or after the scan).
    pub fn row_at(&self, sigma: Slot, t: Slot) -> Option<u32> {
        let mu = self.mu(sigma);
        if t < mu {
            return None;
        }
        self.row_at_offset(t - mu)
    }

    /// Does a station woken at `sigma` transmit at global slot `t`?
    /// (The protocol's transmission predicate, stateless form.)
    pub fn transmits(&self, u: u32, sigma: Slot, t: Slot) -> bool {
        match self.row_at(sigma, t) {
            Some(i) => self.member(i, t, u),
            None => false,
        }
    }

    /// The window index of slot `j` (windows are `[p·W, (p+1)·W)`).
    #[inline]
    pub fn window_index(&self, j: Slot) -> u64 {
        j / u64::from(self.window)
    }
}

// ---------------------------------------------------------------------------
// §5.2 analysis machinery.
// ---------------------------------------------------------------------------

/// The §5.2 occupancy/balance analysis of a wake-up pattern against a matrix.
///
/// All methods take *global* slots; stations are the pattern's wakers.
#[derive(Clone, Debug)]
pub struct MatrixAnalysis<'a> {
    matrix: &'a WakingMatrix,
    /// `(station, σ)` pairs.
    wakes: Vec<(u32, Slot)>,
}

impl<'a> MatrixAnalysis<'a> {
    /// Analyze `pattern` against `matrix`.
    pub fn new(matrix: &'a WakingMatrix, pattern: &WakePattern) -> Self {
        MatrixAnalysis {
            matrix,
            wakes: pattern.wakes().iter().map(|&(id, t)| (id.0, t)).collect(),
        }
    }

    /// `S(j)` with row assignments: the stations operational at slot `j`
    /// (`µ(σ) ≤ j`, scan not finished) and the row each occupies.
    pub fn occupancy(&self, j: Slot) -> Vec<(u32, u32)> {
        self.wakes
            .iter()
            .filter_map(|&(u, sigma)| self.matrix.row_at(sigma, j).map(|row| (u, row)))
            .collect()
    }

    /// Row histogram `|S_{i,j}|` for `i = 1..=rows` (index 0 ↔ row 1).
    pub fn row_sizes(&self, j: Slot) -> Vec<u32> {
        let mut sizes = vec![0u32; self.matrix.rows() as usize];
        for (_, row) in self.occupancy(j) {
            sizes[(row - 1) as usize] += 1;
        }
        sizes
    }

    /// `|S(j)|` — number of operational stations.
    pub fn operational_count(&self, j: Slot) -> usize {
        self.occupancy(j).len()
    }

    /// Condition **S1**: `Σᵢ |S_{i,j}| / 2^i ≤ log n`.
    pub fn s1(&self, j: Slot) -> bool {
        let sum: f64 = self
            .row_sizes(j)
            .iter()
            .enumerate()
            .map(|(idx, &sz)| f64::from(sz) / 2f64.powi(idx as i32 + 1))
            .sum();
        sum <= f64::from(self.matrix.rows())
    }

    /// Condition **S2**: `∃i: |S_{i,j}| ≥ 2^{i-3}`.
    pub fn s2(&self, j: Slot) -> bool {
        self.row_sizes(j)
            .iter()
            .enumerate()
            .any(|(idx, &sz)| f64::from(sz) >= 2f64.powi(idx as i32 + 1 - 3))
    }

    /// The Lemma 5.3/5.4 weighted contention `Σᵢ |S_{i,j}| / 2^{i+ρ(j)}`.
    pub fn weighted_contention(&self, j: Slot) -> f64 {
        let rho = self.matrix.rho(j % self.matrix.ell()) as i32;
        self.row_sizes(j)
            .iter()
            .enumerate()
            .map(|(idx, &sz)| f64::from(sz) / 2f64.powi(idx as i32 + 1 + rho))
            .sum()
    }

    /// The stations that transmit at slot `j`:
    /// `⋃ᵢ (S_{i,j} ∩ M_{i,j})`.
    pub fn transmitters(&self, j: Slot) -> Vec<u32> {
        let mut txs: Vec<u32> = self
            .occupancy(j)
            .into_iter()
            .filter(|&(u, row)| self.matrix.member(row, j, u))
            .map(|(u, _)| u)
            .collect();
        txs.sort_unstable();
        txs
    }

    /// Is some station **isolated** at slot `j`
    /// (`⋃ᵢ (S_{i,j} ∩ M_{i,j}) = {w}`)? Returns the isolated station.
    pub fn isolated(&self, j: Slot) -> Option<u32> {
        let txs = self.transmitters(j);
        if txs.len() == 1 {
            Some(txs[0])
        } else {
            None
        }
    }

    /// Is `S(t)` *well-balanced at time `t`* (Definition after P1): do there
    /// exist `c·|S(t)|·log n·log log n` slots `j ∈ [s, t]` satisfying both
    /// S1 and S2?
    pub fn well_balanced(&self, s: Slot, t: Slot) -> bool {
        let needed = u64::from(self.matrix.c())
            * self.operational_count(t) as u64
            * u64::from(self.matrix.rows())
            * u64::from(self.matrix.window());
        if needed == 0 {
            return true;
        }
        let mut count = 0u64;
        for j in s..=t {
            if self.s1(j) && self.s2(j) {
                count += 1;
                if count >= needed {
                    return true;
                }
            }
        }
        false
    }

    /// Property **P1**: within one window, each `S_{i,·}` is constant.
    /// Returns `true` if the property holds over the window containing `j`.
    pub fn p1_holds(&self, j: Slot) -> bool {
        let w = u64::from(self.matrix.window());
        let start = (j / w) * w;
        let reference = self.row_sizes(start);
        (start..start + w).all(|jj| self.row_sizes(jj) == reference)
    }
}

// ---------------------------------------------------------------------------
// Figure renderings.
// ---------------------------------------------------------------------------

/// Render Figure 1: the row/column walk of one station woken at `sigma`
/// (compressed: one line per row with its global-slot interval).
pub fn render_walk(matrix: &WakingMatrix, sigma: Slot) -> String {
    let mu = matrix.mu(sigma);
    let mut out = String::new();
    out.push_str(&format!(
        "station woken at σ={sigma}, waits [{sigma}, {mu}), operative at µ(σ)={mu}\n"
    ));
    out.push_str(&format!(
        "matrix: {} rows × ℓ={} columns, window={}, c={}\n",
        matrix.rows(),
        matrix.ell(),
        matrix.window(),
        matrix.c()
    ));
    let mut t = mu;
    for i in 1..=matrix.rows() {
        let m = matrix.dwell(i);
        out.push_str(&format!(
            "row {i:>2}: slots [{t}, {}) — m_{i} = {m}, density 2^-({i}+ρ(j))\n",
            t + m
        ));
        t += m;
    }
    out.push_str(&format!("scan ends at slot {t}\n"));
    out
}

/// Render Figure 2: a column snapshot — stations woken at different times
/// transmit conditionally to sets in *different rows* of the *same column*.
pub fn render_column(matrix: &WakingMatrix, pattern: &WakePattern, j: Slot) -> String {
    let analysis = MatrixAnalysis::new(matrix, pattern);
    let mut out = format!(
        "column j = {} (= slot {} mod ℓ), ρ(j) = {}\n",
        j % matrix.ell(),
        j,
        matrix.rho(j % matrix.ell())
    );
    let occupancy = analysis.occupancy(j);
    for i in 1..=matrix.rows() {
        let in_row: Vec<String> = occupancy
            .iter()
            .filter(|&&(_, row)| row == i)
            .map(|&(u, _)| {
                let tx = if matrix.member(i, j, u) { "*" } else { "" };
                format!("u{u}{tx}")
            })
            .collect();
        out.push_str(&format!(
            "row {i:>2} (p=2^-{:>2}): S_{{{i},j}} = {{{}}}\n",
            i + matrix.rho(j % matrix.ell()),
            in_row.join(", ")
        ));
    }
    out.push_str("(* = member of M_{i,j}, i.e. transmits at this slot)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::StationId;

    fn matrix(n: u32) -> WakingMatrix {
        WakingMatrix::new(MatrixParams::new(n))
    }

    #[test]
    fn dimensions_follow_the_formulas() {
        let m = matrix(1024);
        assert_eq!(m.rows(), 10); // log 1024
        assert_eq!(m.window(), 4); // ceil(log2 10)
        assert_eq!(m.ell(), 2 * 2 * 1024 * 10 * 4);
        assert_eq!(m.dwell(1), 2 * 2 * 10 * 4);
        assert_eq!(m.dwell(10), 2 * 1024 * 10 * 4);
        // ℓ is a multiple of the window length (ρ commutes with mod ℓ).
        assert_eq!(m.ell() % u64::from(m.window()), 0);
        // total scan = c·L·W·(2^{L+1}-2) ≈ ℓ.
        assert_eq!(m.total_scan(), 2 * 10 * 4 * (2u64.pow(11) - 2));
    }

    #[test]
    fn small_universes_are_total() {
        for n in [1u32, 2, 3, 4, 7, 8] {
            let m = matrix(n);
            assert!(m.rows() >= 1, "n={n}");
            assert!(m.window() >= 2, "n={n}");
            assert!(m.ell() > 0, "n={n}");
            // Membership is evaluable everywhere without panicking.
            let _ = m.member(1, 12345, 0);
        }
    }

    #[test]
    fn mu_is_next_window_boundary() {
        let m = matrix(1024); // window = 4
        assert_eq!(m.mu(0), 0);
        assert_eq!(m.mu(1), 4);
        assert_eq!(m.mu(3), 4);
        assert_eq!(m.mu(4), 4);
        assert_eq!(m.mu(5), 8);
        // µ(σ) − σ < window, and µ(σ) ≡ 0 mod window.
        for sigma in 0..100u64 {
            let mu = m.mu(sigma);
            assert!(mu >= sigma && mu - sigma < 4);
            assert_eq!(mu % 4, 0);
        }
    }

    #[test]
    fn rho_sweeps_within_windows() {
        let m = matrix(1024);
        for j in 0..40u64 {
            assert_eq!(m.rho(j), (j % 4) as u32);
        }
    }

    #[test]
    fn row_at_offset_walks_rows_in_order() {
        let m = matrix(64); // rows = 6
        assert_eq!(m.row_at_offset(0), Some(1));
        assert_eq!(m.row_at_offset(m.dwell(1) - 1), Some(1));
        assert_eq!(m.row_at_offset(m.dwell(1)), Some(2));
        let before_last = m.total_scan() - 1;
        assert_eq!(m.row_at_offset(before_last), Some(6));
        assert_eq!(m.row_at_offset(m.total_scan()), None);
    }

    #[test]
    fn membership_density_tracks_2_to_minus_i_plus_rho() {
        let m = matrix(256); // rows = 8, window = 3
                             // Sample row 2 at columns with ρ = 0: density 1/4.
        let trials = 3000u64;
        let w = u64::from(m.window());
        let mut hits = 0u64;
        let mut total = 0u64;
        for col in (0..trials).map(|x| x * w) {
            for u in 0..m.n() {
                total += 1;
                if m.member(2, col, u) {
                    hits += 1;
                }
            }
        }
        let p = hits as f64 / total as f64;
        assert!(
            (p - 0.25).abs() < 0.01,
            "row-2 ρ=0 density {p} should be ≈ 0.25"
        );
    }

    #[test]
    fn transmits_combines_waiting_rows_and_membership() {
        let m = matrix(64);
        let sigma = 5u64;
        let mu = m.mu(sigma);
        // While waiting, never transmits.
        for t in sigma..mu {
            assert!(!m.transmits(3, sigma, t));
        }
        // After the scan, never transmits.
        assert!(!m.transmits(3, sigma, mu + m.total_scan()));
        // During the scan, transmits iff member of the current row.
        let t = mu + m.dwell(1); // first slot of row 2
        assert_eq!(m.transmits(3, sigma, t), m.member(2, t, 3));
    }

    #[test]
    fn next_member_agrees_with_a_member_scan() {
        let m = matrix(128);
        for u in [0u32, 7, 127] {
            for i in [1u32, 3, m.rows()] {
                for from in [0u64, 5, m.ell() - 3, 2 * m.ell() + 11] {
                    let to = from + 500;
                    let reference = (from..to).find(|&t| m.member(i, t, u));
                    assert_eq!(
                        m.next_member(i, u, from, to),
                        reference,
                        "i={i} u={u} from={from}"
                    );
                }
            }
        }
        // Out-of-universe stations are members of nothing.
        assert_eq!(m.next_member(1, m.n(), 0, 10_000), None);
    }

    #[test]
    fn analysis_occupancy_and_rows() {
        let m = matrix(64); // window = 3
        let pattern = WakePattern::new(vec![
            (StationId(1), 0),
            (StationId(2), 0),
            (StationId(3), 50),
        ])
        .unwrap();
        let a = MatrixAnalysis::new(&m, &pattern);
        // At slot 0: stations 1, 2 operational (µ(0)=0) in row 1; 3 not yet.
        assert_eq!(a.occupancy(0), vec![(1, 1), (2, 1)]);
        assert_eq!(a.operational_count(0), 2);
        let sizes = a.row_sizes(0);
        assert_eq!(sizes[0], 2);
        assert_eq!(sizes.iter().sum::<u32>(), 2);
        // Much later, station 3 joins in a lower row than 1 and 2 only if
        // they have advanced; at its µ(50)=51? window=3 ⇒ µ(50)=51.
        let j = 60u64;
        let occ = a.occupancy(j);
        assert_eq!(occ.len(), 3);
        let row3 = occ.iter().find(|&&(u, _)| u == 3).unwrap().1;
        let row1 = occ.iter().find(|&&(u, _)| u == 1).unwrap().1;
        assert!(row3 <= row1);
    }

    #[test]
    fn p1_row_sets_constant_within_window() {
        let m = matrix(256);
        let pattern = WakePattern::new(vec![
            (StationId(0), 0),
            (StationId(5), 2),
            (StationId(9), 7),
            (StationId(20), 13),
        ])
        .unwrap();
        let a = MatrixAnalysis::new(&m, &pattern);
        for j in [0u64, 3, 6, 9, 30, 60] {
            assert!(a.p1_holds(j), "P1 violated in window of slot {j}");
        }
    }

    #[test]
    fn weighted_contention_halves_across_window() {
        // Within one window the occupancy is constant (P1) while ρ increases,
        // so the weighted contention halves from slot to slot.
        let m = matrix(256); // window = 3
        let pattern =
            WakePattern::new((0..12u32).map(|u| (StationId(u), 0)).collect::<Vec<_>>()).unwrap();
        let a = MatrixAnalysis::new(&m, &pattern);
        let w = u64::from(m.window());
        let start = 2 * w; // an arbitrary window boundary
        let c0 = a.weighted_contention(start);
        let c1 = a.weighted_contention(start + 1);
        let c2 = a.weighted_contention(start + 2);
        assert!((c0 / c1 - 2.0).abs() < 1e-9);
        assert!((c1 / c2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn isolation_is_exactly_one_transmitter() {
        let m = matrix(64);
        let pattern = WakePattern::new(vec![(StationId(4), 0), (StationId(9), 0)]).unwrap();
        let a = MatrixAnalysis::new(&m, &pattern);
        for j in 0..200u64 {
            let txs = a.transmitters(j);
            match a.isolated(j) {
                Some(w) => assert_eq!(txs, vec![w]),
                None => assert_ne!(txs.len(), 1),
            }
        }
    }

    #[test]
    fn well_balanced_is_reached_within_the_theorem_horizon() {
        // Theorem 5.1: t − s ≥ 2c·|S(t)|·log n·log log n ⇒ well-balanced.
        let m = matrix(64);
        let k = 3u32;
        let pattern =
            WakePattern::new((0..k).map(|u| (StationId(u * 9), 0)).collect::<Vec<_>>()).unwrap();
        let a = MatrixAnalysis::new(&m, &pattern);
        let horizon =
            2 * u64::from(m.c()) * u64::from(k) * u64::from(m.rows()) * u64::from(m.window());
        assert!(
            a.well_balanced(0, horizon),
            "S(t) not well-balanced by the Theorem 5.1 horizon {horizon}"
        );
    }

    #[test]
    fn different_seeds_give_different_matrices() {
        let a = WakingMatrix::new(MatrixParams::new(128).with_seed(1));
        let b = WakingMatrix::new(MatrixParams::new(128).with_seed(2));
        let differs =
            (0..200u64).any(|j| (0..128u32).any(|u| a.member(1, j, u) != b.member(1, j, u)));
        assert!(differs);
    }

    #[test]
    fn renders_are_nonempty_and_mention_structure() {
        let m = matrix(64);
        let walk = render_walk(&m, 7);
        assert!(walk.contains("µ(σ)"));
        assert!(walk.contains("m_1"));
        let pattern = WakePattern::new(vec![(StationId(1), 0), (StationId(2), 9)]).unwrap();
        let col = render_column(&m, &pattern, 40);
        assert!(col.contains("S_{1,j}") || col.contains("row  1") || col.contains("row 1"));
    }

    #[test]
    fn c_scales_dimensions_linearly() {
        let m1 = WakingMatrix::new(MatrixParams::new(64).with_c(1));
        let m2 = WakingMatrix::new(MatrixParams::new(64).with_c(2));
        assert_eq!(2 * m1.ell(), m2.ell());
        assert_eq!(2 * m1.dwell(3), m2.dwell(3));
    }
}
