//! Uniform access to `(n, 2^i)`-selective families for schedule construction.
//!
//! Both Scenario A and Scenario B algorithms consume *sequences* of
//! `(n, 2^i)`-selective families. The paper treats the families as given
//! (their existence is Komlós–Greenberg); this module lets the protocols pick
//! a concrete realization:
//!
//! * [`FamilyProvider::Random`] — the Komlós–Greenberg probabilistic
//!   construction (`selectors::random`), evaluated as a PRF oracle with
//!   `O(1)` memory: the size-optimal choice, selective w.h.p.;
//! * [`FamilyProvider::KautzSingleton`] — the explicit Reed–Solomon
//!   construction (`selectors::kautz_singleton`): deterministic and provably
//!   strongly selective, polynomially longer.
//!
//! Every provided family is wrapped in a [`DynFamily`], a cheap handle that
//! implements [`selectors::Schedule`] so it can be composed with the schedule
//! algebra.

use selectors::kautz_singleton::KautzSingleton;
use selectors::random::{OracleFamily, RandomFamilyBuilder};
use selectors::schedule::Schedule;

/// A strategy for realizing `(n,k)`-selective families.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FamilyProvider {
    /// Komlós–Greenberg randomized construction with the given PRF seed and
    /// union-bound failure probability `δ`. Size `O(k + k·log(n/k))`.
    Random {
        /// PRF seed; per-family sub-seeds are derived from it and `k`.
        seed: u64,
        /// Union-bound failure probability used to size the family.
        delta: f64,
    },
    /// Explicit Kautz–Singleton superimposed code. Size `O(k² log² n)`,
    /// fully deterministic, *strongly* selective.
    KautzSingleton,
}

impl Default for FamilyProvider {
    /// The size-optimal randomized provider with seed 0 and `δ = 10⁻⁹`.
    fn default() -> Self {
        FamilyProvider::Random {
            seed: 0,
            delta: 1e-9,
        }
    }
}

impl FamilyProvider {
    /// A randomized provider with the given seed and default `δ = 10⁻⁹`.
    pub fn random_with_seed(seed: u64) -> Self {
        FamilyProvider::Random { seed, delta: 1e-9 }
    }

    /// Realize an `(n,k)`-selective family.
    pub fn family(&self, n: u32, k: u32) -> DynFamily {
        match *self {
            FamilyProvider::Random { seed, delta } => {
                // Decorrelate families of different k under one provider seed.
                let sub_seed = mac_sim::rng::derive_seed(seed, u64::from(k));
                let oracle = RandomFamilyBuilder::new(n, k)
                    .seed(sub_seed)
                    .failure_probability(delta)
                    .build_oracle();
                DynFamily {
                    n,
                    k,
                    inner: DynFamilyInner::Oracle(oracle),
                }
            }
            FamilyProvider::KautzSingleton => DynFamily {
                n,
                k,
                inner: DynFamilyInner::Ks(KautzSingleton::new(n, k)),
            },
        }
    }

    /// The family sequence `F₁, F₂, …, F_top` with `Fᵢ = (n, 2^i)`-selective,
    /// for `i = 1 ..= top` — the building block of `select_among_the_first`
    /// (top = `⌈log n⌉`) and `wait_and_go` (top = `⌈log k⌉`).
    ///
    /// For `top = 0` (which arises when `k = 1`) the sequence is the single
    /// trivial `(n,1)`-selective family (the full set), so the returned
    /// schedule is never empty.
    pub fn doubling_sequence(&self, n: u32, top: u32) -> Vec<DynFamily> {
        if top == 0 {
            return vec![self.family(n, 1)];
        }
        (1..=top)
            .map(|i| self.family(n, (1u32 << i.min(31)).min(n)))
            .collect()
    }
}

#[derive(Clone, Debug)]
enum DynFamilyInner {
    Oracle(OracleFamily),
    Ks(KautzSingleton),
}

/// A realized `(n,k)`-selective family: a cheap, cloneable handle answering
/// membership queries in O(1), usable as a [`Schedule`].
#[derive(Clone, Debug)]
pub struct DynFamily {
    n: u32,
    k: u32,
    inner: DynFamilyInner,
}

impl DynFamily {
    /// Universe size.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Contention bound `k` the family targets.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Family length (number of transmission sets).
    pub fn len(&self) -> u64 {
        match &self.inner {
            DynFamilyInner::Oracle(o) => o.len() as u64,
            DynFamilyInner::Ks(ks) => ks.len() as u64,
        }
    }

    /// `true` iff the family has no sets (never happens for valid params).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does station `u` belong to transmission set `j`?
    #[inline]
    pub fn member(&self, u: u32, j: u64) -> bool {
        match &self.inner {
            DynFamilyInner::Oracle(o) => (j as usize) < o.len() && o.transmits(u, j as usize),
            DynFamilyInner::Ks(ks) => (j as usize) < ks.len() && ks.transmits(u, j as usize),
        }
    }

    /// Materialize into an explicit family for verification.
    pub fn materialize(&self) -> selectors::SelectiveFamily {
        match &self.inner {
            DynFamilyInner::Oracle(o) => o.materialize(),
            DynFamilyInner::Ks(ks) => ks.materialize(),
        }
    }
}

impl Schedule for DynFamily {
    fn n(&self) -> u32 {
        self.n
    }
    fn len(&self) -> Option<u64> {
        Some(self.len())
    }
    fn transmits(&self, u: u32, j: u64) -> bool {
        self.member(u, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selectors::verify;

    #[test]
    fn random_provider_families_verify() {
        let p = FamilyProvider::default();
        for (n, k) in [(12u32, 2u32), (14, 4)] {
            let fam = p.family(n, k).materialize();
            assert!(
                verify::selective_exhaustive(&fam).is_ok(),
                "(n={n},k={k}) not selective"
            );
        }
    }

    #[test]
    fn ks_provider_families_verify_strongly() {
        let p = FamilyProvider::KautzSingleton;
        let fam = p.family(12, 3).materialize();
        assert!(verify::strongly_selective_exhaustive(&fam).is_ok());
    }

    #[test]
    fn doubling_sequence_shapes() {
        let p = FamilyProvider::default();
        let seq = p.doubling_sequence(64, 3);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0].k(), 2);
        assert_eq!(seq[1].k(), 4);
        assert_eq!(seq[2].k(), 8);
        // Lengths grow with k.
        assert!(seq[0].len() < seq[2].len());
    }

    #[test]
    fn doubling_sequence_top_zero_is_trivial_family() {
        let p = FamilyProvider::default();
        let seq = p.doubling_sequence(16, 0);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].k(), 1);
        assert_eq!(seq[0].len(), 1);
        // The single set is the full universe.
        for u in 0..16u32 {
            assert!(seq[0].member(u, 0));
        }
    }

    #[test]
    fn doubling_sequence_clamps_k_at_n() {
        let p = FamilyProvider::default();
        let seq = p.doubling_sequence(10, 4); // 2^4 = 16 > n = 10
        assert_eq!(seq.last().unwrap().k(), 10);
    }

    #[test]
    fn different_k_get_different_seeds() {
        let p = FamilyProvider::default();
        let a = p.family(32, 4);
        let b = p.family(32, 8);
        // Membership patterns of the first set should differ somewhere.
        let differs = (0..32u32).any(|u| a.member(u, 0) != b.member(u, 0));
        assert!(differs);
    }

    #[test]
    fn dyn_family_is_a_schedule() {
        let p = FamilyProvider::default();
        let f = p.family(16, 2);
        let s: &dyn Schedule = &f;
        assert_eq!(s.n(), 16);
        assert_eq!(s.len(), Some(f.len()));
        // Out-of-range position is silent.
        assert!(!s.transmits(0, f.len() + 10));
    }
}
