//! `select_among_the_first` — the Scenario A component (§3).
//!
//! Only stations woken **exactly at `s`** participate; every station can
//! decide participation locally because `s` is known. Participants transmit
//! according to the sequential composition `⟨F₁, F₂, …⟩` of
//! `(n, 2^j)`-selective families for `j = 1, 2, …, ⌈log n⌉` (cycled for
//! robustness), with schedule positions counted from `s`.
//!
//! *Correctness.* The participant set `X` (stations with `σ = s`) is fixed
//! from slot `s` on and non-empty. Let `i` be such that
//! `2^{i-1} ≤ |X| ≤ 2^i`; the selectivity property of `Fᵢ` yields a slot
//! where exactly one member of `X` transmits — non-participants are silent,
//! so that slot is a success. Time: reaching and finishing `Fᵢ` costs
//! `O(Σ_{j ≤ i} 2^j log(n/2^j)) = O(|X| log(n/|X|) + |X|) ⊆ O(k log(n/k) + k)`.
//!
//! This component alone is **not** a complete algorithm for Scenario A: it
//! ignores stations woken after `s` (they may be the only chance of success
//! if… no, `X ≠ ∅` always — it *is* complete, but not optimal for
//! `k > n/c`). [`WakeupWithS`](crate::wakeup_with_s::WakeupWithS)
//! interleaves it with round-robin to cover the large-`k` regime.

use crate::family_provider::{DynFamily, FamilyProvider};
use mac_sim::{
    Action, ClassStation, MemberRemoval, Members, Protocol, Slot, Station, StationId, TxHint,
    TxTally, TxWord, Until,
};
use selectors::math::log_n;
use std::sync::Arc;

/// The concatenated doubling-family schedule `⟨F₁, F₂, …⟩` shared by the
/// Scenario A and Scenario B algorithms: family `Fᵢ` is `(n, 2^i)`-selective.
///
/// Internally this is the schedule algebra's cyclic concatenation
/// `cycle(⟨F₁, …, F_top⟩)`, so position lookup (`transmits`) and sparse
/// evaluation (`next_position`) reuse the `Schedule`/`NextOne` combinators
/// rather than duplicating their arithmetic.
#[derive(Debug)]
pub struct DoublingSchedule {
    cycle: selectors::schedule::CycleSchedule<selectors::schedule::ConcatSchedule<DynFamily>>,
    /// Per-station [`PositionIndex`] memo, shared by every station (and —
    /// when the schedule handle itself is shared through the construction
    /// cache — every *run*) holding this schedule: the `O(period)` index
    /// scan happens once per station per schedule instead of once per
    /// station per run. Keyed by station id in a `BTreeMap` so the memo has
    /// no ambient hash state (deterministic tier).
    indices: std::sync::Mutex<std::collections::BTreeMap<u32, Arc<PositionIndex>>>,
}

impl DoublingSchedule {
    /// Build from `provider` the families `F₁ … F_top` (`top = 0` degenerates
    /// to the single trivial `(n,1)` family).
    pub fn new(provider: &FamilyProvider, n: u32, top: u32) -> Self {
        DoublingSchedule::from_families(provider.doubling_sequence(n, top))
    }

    /// Build over an explicit (possibly cache-shared) family sequence.
    pub fn from_families(families: Vec<DynFamily>) -> Self {
        use selectors::ScheduleExt;
        DoublingSchedule {
            cycle: selectors::schedule::ConcatSchedule::new(families).cycle(),
            indices: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Total period `z = z₁ + … + z_top`.
    pub fn period(&self) -> u64 {
        self.cycle.period()
    }

    /// Family start offsets within a period — the boundaries `wait_and_go`
    /// waits for.
    pub fn offsets(&self) -> &[u64] {
        self.cycle.inner().offsets()
    }

    /// Does station `u` transmit at position `p` (taken mod the period)?
    pub fn transmits(&self, u: u32, p: u64) -> bool {
        use selectors::Schedule;
        self.cycle.transmits(u, p)
    }

    /// The families in order.
    pub fn families(&self) -> &[DynFamily] {
        self.cycle.inner().parts()
    }

    /// Smallest position `p' ≥ p` that is a family boundary (mod period).
    pub fn next_boundary(&self, p: u64) -> u64 {
        let r = p % self.period();
        for &off in self.offsets() {
            if off >= r {
                return p + (off - r);
            }
        }
        // Wrap to the start of the next period.
        p + (self.period() - r)
    }

    /// Smallest position `p' ≥ p` at which station `u` transmits, or `None`
    /// if `u` is in no transmission set of any family (then the cyclic
    /// schedule never selects it). Delegates to the schedule algebra's
    /// [`next_one`](selectors::Schedule::next_one), which covers at most one
    /// full period; successive queries over a run scan disjoint stretches,
    /// so the amortized cost matches one dense pass.
    pub fn next_position(&self, u: u32, p: u64) -> Option<u64> {
        use selectors::{NextOne, Schedule};
        match self.cycle.next_one(u, p) {
            NextOne::At(q) => Some(q),
            NextOne::Never => None,
            // Concat-of-finite-families under cycle always answers exactly.
            NextOne::Unknown => unreachable!("cycled concat schedules answer next_one exactly"),
        }
    }

    /// Build station `u`'s [`PositionIndex`]: every position of one period at
    /// which `u` transmits, collected in a single O(period) scan. Queries
    /// against the index are then O(log) each (binary search + cyclic wrap),
    /// instead of [`next_position`](Self::next_position)'s linear walk —
    /// the win for runs that outlive one schedule period, such as the
    /// conflict-resolution resolvers that are re-queried after every success.
    pub fn position_index(&self, u: u32) -> PositionIndex {
        let period = self.period();
        let positions = (0..period).filter(|&p| self.transmits(u, p)).collect();
        PositionIndex { positions, period }
    }

    /// Station `u`'s [`PositionIndex`] out of the schedule's interior memo:
    /// built on first request (outside the lock), shared ever after. With a
    /// cache-shared schedule handle this is what turns the per-run index
    /// scans of the conflict-resolution resolvers into a once-per-ensemble
    /// cost.
    pub fn shared_index(&self, u: u32) -> Arc<PositionIndex> {
        if let Some(idx) = self.indices.lock().unwrap().get(&u) {
            return Arc::clone(idx);
        }
        let built = Arc::new(self.position_index(u));
        let mut map = self.indices.lock().unwrap();
        // A racing builder may have inserted meanwhile; both built the same
        // deterministic index, so either handle is correct — share the one
        // that landed.
        Arc::clone(map.entry(u).or_insert(built))
    }
}

/// The family-sequence height `⌈log n⌉` of the full doubling schedule the
/// `s`-known protocols walk ([`SelectAmongFirst`],
/// [`WakeupWithS`](crate::WakeupWithS)); validates `n ≥ 1`.
pub(crate) fn full_doubling_top(n: u32) -> u32 {
    assert!(n >= 1);
    log_n(u64::from(n))
}

/// A per-station index over one period of a [`DoublingSchedule`]: the sorted
/// positions at which the station transmits. Built once (O(period)), then
/// [`next_position`](PositionIndex::next_position) answers any query in
/// O(log #positions), exactly matching the schedule's linear walk.
#[derive(Clone, Debug, Default)]
pub struct PositionIndex {
    /// Sorted transmitting positions within `[0, period)`.
    positions: Vec<u64>,
    period: u64,
}

impl PositionIndex {
    /// Smallest position `p' ≥ p` at which the indexed station transmits, or
    /// `None` if it transmits nowhere in the period (hence never — the
    /// schedule is cyclic).
    pub fn next_position(&self, p: u64) -> Option<u64> {
        let first = *self.positions.first()?;
        let r = p % self.period;
        match self.positions.partition_point(|&q| q < r) {
            i if i < self.positions.len() => Some(p + (self.positions[i] - r)),
            // Wrap: the next hit is the first position of the next period.
            _ => Some(p + (self.period - r) + first),
        }
    }

    /// Number of transmitting positions per period.
    pub fn hits_per_period(&self) -> usize {
        self.positions.len()
    }
}

/// Memoizing wrapper around [`DoublingSchedule::next_position`] for stations
/// whose hints are re-queried at slots scheduled by a *different* component
/// (the interleaved round-robin turns) or by success feedback (the
/// conflict-resolution resolvers). The schedule is oblivious, so a computed
/// hit stays the answer until the query point passes it; without the memo
/// each re-query would re-scan toward the same far-off family hit.
///
/// Queries inside the first period scan linearly (no worse than the hint-free
/// engine, and cheap for stations that succeed early). The first query
/// *past* one period builds the station's [`PositionIndex`] — linear rescans
/// would otherwise repeat a full-period walk every cycle, which made the
/// selective resolver schedule-scan-bound — and every query thereafter is
/// O(log) per the index.
#[derive(Clone, Debug, Default)]
pub(crate) struct NextPositionCache {
    /// Last linear-scan answer (`Some(None)` = provably never).
    memo: Option<Option<u64>>,
    /// Per-station index handle, adopted lazily once the run outlives one
    /// period — from the schedule's shared memo, so across runs of a
    /// cache-shared schedule only the first run pays the `O(period)` scan.
    index: Option<Arc<PositionIndex>>,
}

impl NextPositionCache {
    /// The smallest position `q ≥ q0` where `u` transmits in `schedule`,
    /// reusing the previous answer when still valid. Query points must be
    /// non-decreasing across calls (the engine's `after` clock is).
    pub(crate) fn query(&mut self, schedule: &DoublingSchedule, u: u32, q0: u64) -> Option<u64> {
        if let Some(idx) = &self.index {
            return idx.next_position(q0);
        }
        match self.memo {
            // A definitive "never in any period" is permanent.
            Some(None) => None,
            // A hit not yet passed: the earlier scan proved silence up to it.
            Some(Some(q)) if q >= q0 => Some(q),
            _ if q0 >= schedule.period() => {
                let idx = self.index.insert(schedule.shared_index(u));
                idx.next_position(q0)
            }
            _ => {
                let q = schedule.next_position(u, q0);
                self.memo = Some(q);
                q
            }
        }
    }
}

/// Membership-test budget per class hint query: enough to prove silence over
/// long stretches in one go for small classes, while bounding the work a
/// single [`ClassStation::next_transmission`] call can sink into a huge
/// class (the scan resumes from its high-water mark at the next query).
pub(crate) const CLASS_SCAN_BUDGET: u64 = 1 << 16;

/// Result of one [`AnyMemberScan`] query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Scan {
    /// Some member transmits at this position (the earliest `≥ q0`).
    Hit(u64),
    /// Silence is proven for every position below this bound, which is
    /// `> q0`; the caller must re-query from the bound (window exhausted or
    /// budget spent).
    SilentBelow(u64),
    /// No member transmits at any position — a full period is silent, and
    /// the schedule is cyclic.
    Never,
}

/// Budgeted "earliest position where **any** member transmits" scanner over
/// a [`DoublingSchedule`] — the class-aggregated counterpart of
/// [`NextPositionCache`]. Positions are tested one by one with an
/// early-exit membership loop; a high-water mark records proven silence and
/// a memoized hit survives re-queries, so monotone query points (the
/// engine's `after` clock) never re-scan a position. A full silent period
/// proves permanent silence.
#[derive(Clone, Debug, Default)]
pub(crate) struct AnyMemberScan {
    /// Every position `< proven` is proven transmission-free (or was a
    /// memoized hit since passed).
    proven: u64,
    /// Memoized earliest hit at or after `proven`, if found.
    hit: Option<u64>,
    /// Consecutive proven-silent positions (`≥ period` ⇒ never).
    silent_streak: u64,
    never: bool,
}

impl AnyMemberScan {
    /// Earliest position `q ∈ [q0, q_lim)` at which any member transmits.
    /// Query points must be non-decreasing across calls. At least one new
    /// position is always completed (when the window is non-empty and
    /// unproven), so a [`Scan::SilentBelow`] bound strictly advances.
    pub(crate) fn next_hit(
        &mut self,
        schedule: &DoublingSchedule,
        members: &Members,
        q0: u64,
        q_lim: u64,
        budget: u64,
    ) -> Scan {
        if self.never || members.is_empty() {
            return Scan::Never;
        }
        if let Some(q) = self.hit {
            if q < q0 {
                self.hit = None; // query point moved past the memoized hit
            } else if q < q_lim {
                return Scan::Hit(q);
            } else {
                return Scan::SilentBelow(q_lim); // hit beyond the window
            }
        }
        let start = self.proven.max(q0);
        if start >= q_lim {
            return Scan::SilentBelow(q_lim); // window already proven silent
        }
        let period = schedule.period();
        let mut tests = 0u64;
        let mut p = start;
        while p < q_lim {
            // Budget is honored between positions; the first position of
            // the call always completes so the silence bound advances.
            if tests >= budget && p > start {
                return Scan::SilentBelow(p);
            }
            let mut any = false;
            'runs: for &(lo, hi) in members.runs() {
                for u in lo..hi {
                    tests += 1;
                    if schedule.transmits(u, p) {
                        any = true;
                        break 'runs;
                    }
                }
            }
            if any {
                self.proven = p;
                self.hit = Some(p);
                self.silent_streak = 0;
                return Scan::Hit(p);
            }
            p += 1;
            self.proven = p;
            self.silent_streak += 1;
            if self.silent_streak >= period {
                self.never = true;
                return Scan::Never;
            }
        }
        Scan::SilentBelow(q_lim)
    }
}

/// The `select_among_the_first` protocol (Scenario A component).
#[derive(Clone, Debug)]
pub struct SelectAmongFirst {
    n: u32,
    s: Slot,
    schedule: Arc<DoublingSchedule>,
}

impl SelectAmongFirst {
    /// Build for `n` stations with known first-wake-up slot `s`.
    pub fn new(n: u32, s: Slot, provider: FamilyProvider) -> Self {
        let top = full_doubling_top(n);
        SelectAmongFirst {
            n,
            s,
            schedule: Arc::new(DoublingSchedule::new(&provider, n, top)),
        }
    }

    /// Like [`new`](Self::new), but the doubling schedule comes out of
    /// `cache` — built once per `(n, provider)` per ensemble and shared
    /// across runs.
    pub fn cached(
        n: u32,
        s: Slot,
        provider: &FamilyProvider,
        cache: &crate::cache::ConstructionCache,
    ) -> Self {
        SelectAmongFirst {
            n,
            s,
            schedule: cache.schedule(provider, n, full_doubling_top(n)),
        }
    }

    /// The known starting slot `s`.
    pub fn s(&self) -> Slot {
        self.s
    }

    /// Total length of one pass over all families.
    pub fn schedule_period(&self) -> u64 {
        self.schedule.period()
    }
}

struct SafStation {
    id: StationId,
    s: Slot,
    participates: bool,
    schedule: Arc<DoublingSchedule>,
}

impl Station for SafStation {
    fn wake(&mut self, sigma: Slot) {
        // Participation is decidable locally: compare own wake time with s.
        self.participates = sigma == self.s;
    }

    fn act(&mut self, t: Slot) -> Action {
        if !self.participates || t < self.s {
            return Action::Listen;
        }
        Action::from_bool(self.schedule.transmits(self.id.0, t - self.s))
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        if !self.participates {
            return TxHint::never();
        }
        let from = after.max(self.s);
        match self.schedule.next_position(self.id.0, from - self.s) {
            Some(p) => TxHint::at(self.s + p),
            None => TxHint::never(),
        }
    }

    fn fill_tx_word(&mut self, base: Slot, width: u32) -> Option<TxWord> {
        // The schedule is oblivious and participation is fixed at wake, so
        // the whole tile is an unconditional fact: one position lookup per
        // slot, instead of one linear `next_position` walk per event.
        if !self.participates {
            return Some(TxWord::forever(0));
        }
        let mut bits = 0u64;
        for j in 0..u64::from(width) {
            let t = base + j;
            if t >= self.s && self.schedule.transmits(self.id.0, t - self.s) {
                bits |= 1u64 << j;
            }
        }
        Some(TxWord::forever(bits))
    }
}

/// One equivalence class of `select_among_the_first` stations — a wake batch
/// shares `σ`, so either every member participates (`σ = s`) or none does,
/// and the whole batch walks the same schedule. Per-slot work is one
/// [`TxTally::record_members`] sweep; hints come from the budgeted
/// [`AnyMemberScan`], answering `Never(Until::Slot(…))` when the budget runs
/// out so the engine re-queries at the proven-silence bound.
struct SafClass {
    members: Members,
    s: Slot,
    participates: bool,
    schedule: Arc<DoublingSchedule>,
    scan: AnyMemberScan,
}

impl ClassStation for SafClass {
    fn weight(&self) -> u64 {
        self.members.count()
    }

    fn wake(&mut self, sigma: Slot) {
        self.participates = sigma == self.s;
    }

    fn act(&mut self, t: Slot, tally: &mut TxTally) {
        if !self.participates || t < self.s {
            return;
        }
        let (schedule, p) = (&self.schedule, t - self.s);
        tally.record_members(&self.members, |u| schedule.transmits(u, p));
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        if !self.participates {
            return TxHint::never();
        }
        let q0 = after.max(self.s) - self.s;
        match self.scan.next_hit(
            &self.schedule,
            &self.members,
            q0,
            u64::MAX,
            CLASS_SCAN_BUDGET,
        ) {
            Scan::Hit(q) => TxHint::at(self.s + q),
            Scan::Never => TxHint::never(),
            // Budget exhausted: silence proven strictly past `after`, so the
            // engine may skip to the bound and ask again.
            Scan::SilentBelow(b) => TxHint::Never(Until::Slot(self.s + b)),
        }
    }

    fn remove_member(&mut self, id: StationId) -> MemberRemoval {
        // The schedule is per-member and oblivious; removal shrinks the
        // set. The scan memo may hold the departed member's hit, so
        // restart it (proven silence only grows when members leave).
        if self.members.remove(id.0) {
            self.scan = AnyMemberScan::default();
            MemberRemoval::Removed {
                emptied: self.members.is_empty(),
            }
        } else {
            MemberRemoval::NotMember
        }
    }
}

impl Protocol for SelectAmongFirst {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(SafStation {
            id,
            s: self.s,
            participates: false,
            schedule: Arc::clone(&self.schedule),
        })
    }

    fn class_station(&self, members: &Members, _run_seed: u64) -> Option<Box<dyn ClassStation>> {
        Some(Box::new(SafClass {
            members: members.clone(),
            s: self.s,
            participates: false,
            schedule: Arc::clone(&self.schedule),
            scan: AnyMemberScan::default(),
        }))
    }

    fn name(&self) -> String {
        format!("select-among-the-first(n={}, s={})", self.n, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn sim(n: u32) -> Simulator {
        Simulator::new(SimConfig::new(n))
    }

    #[test]
    fn solves_simultaneous_wakeups() {
        let n = 64;
        for k in [1usize, 2, 3, 5, 8, 16] {
            let p = SelectAmongFirst::new(n, 50, FamilyProvider::default());
            let chosen: Vec<StationId> = (0..k as u32).map(|i| StationId(i * 3)).collect();
            let pattern = WakePattern::simultaneous(&chosen, 50).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "k={k} failed");
        }
    }

    #[test]
    fn late_wakers_stay_silent() {
        let n = 32;
        let p = SelectAmongFirst::new(n, 10, FamilyProvider::default());
        // One station at s = 10, three latecomers.
        let pattern = WakePattern::new(vec![
            (StationId(4), 10),
            (StationId(9), 11),
            (StationId(20), 11),
            (StationId(31), 12),
        ])
        .unwrap();
        let cfg = SimConfig::new(n).with_transcript();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        assert!(out.solved());
        assert_eq!(out.winner, Some(StationId(4)));
        // No slot may contain a transmission from a latecomer.
        let tr = out.transcript.unwrap();
        for r in tr.records() {
            for &tx in &r.transmitters {
                assert_eq!(tx, StationId(4), "latecomer {tx} transmitted");
            }
        }
    }

    #[test]
    fn latency_grows_sublinearly_in_n_for_fixed_k() {
        // For fixed k, latency should scale like k·log(n/k) — far below n.
        let mut latencies = Vec::new();
        for n in [64u32, 256, 1024] {
            let p = SelectAmongFirst::new(n, 0, FamilyProvider::default());
            let pattern = WakePattern::simultaneous(&ids(&[1, n / 2, n - 2]), 0).unwrap();
            let out = sim(n).run(&p, &pattern, 0).unwrap();
            let lat = out.latency().expect("must solve");
            assert!(lat < u64::from(n), "latency {lat} not sublinear at n={n}");
            latencies.push(lat);
        }
    }

    #[test]
    fn requires_exact_s_to_participate() {
        // If the protocol's s is wrong (earlier than any wake), nobody
        // participates and the component never succeeds on its own.
        let n = 16;
        let p = SelectAmongFirst::new(n, 5, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&[2, 7]), 6).unwrap();
        let cfg = SimConfig::new(n).with_max_slots(500);
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        assert!(!out.solved());
        assert_eq!(out.transmissions, 0);
    }

    #[test]
    fn deterministic_given_provider_seed() {
        let n = 64;
        let mk = || SelectAmongFirst::new(n, 0, FamilyProvider::random_with_seed(33));
        let pattern = WakePattern::simultaneous(&ids(&[0, 5, 9, 13]), 0).unwrap();
        let a = sim(n).run(&mk(), &pattern, 0).unwrap();
        let b = sim(n).run(&mk(), &pattern, 0).unwrap();
        assert_eq!(a.first_success, b.first_success);
        assert_eq!(a.winner, b.winner);
    }

    #[test]
    fn doubling_schedule_boundaries() {
        let sched = DoublingSchedule::new(&FamilyProvider::default(), 64, 3);
        assert_eq!(sched.offsets()[0], 0);
        assert_eq!(sched.families().len(), 3);
        // next_boundary at a boundary is the boundary itself.
        assert_eq!(sched.next_boundary(0), 0);
        let second = sched.offsets()[1];
        assert_eq!(sched.next_boundary(1), second.max(1));
        // Past the last family start, the next boundary is the period wrap.
        let last_off = *sched.offsets().last().unwrap();
        assert_eq!(sched.next_boundary(last_off + 1) % sched.period(), 0);
        // next_boundary is monotone and ≥ its argument.
        for p in 0..(2 * sched.period()) {
            let b = sched.next_boundary(p);
            assert!(b >= p);
            assert!(sched.offsets().contains(&(b % sched.period())));
        }
    }

    #[test]
    fn position_index_pins_the_linear_walk() {
        // The O(log) per-station index must answer exactly like the linear
        // next_position walk — for every station, across period wraps, for
        // both providers and for degenerate tops.
        for (provider, n, top) in [
            (FamilyProvider::random_with_seed(5), 48u32, 3u32),
            (FamilyProvider::random_with_seed(5), 16, 0),
            (FamilyProvider::KautzSingleton, 20, 2),
        ] {
            let sched = DoublingSchedule::new(&provider, n, top);
            let period = sched.period();
            for u in 0..n {
                let idx = sched.position_index(u);
                for p in 0..(3 * period + 2) {
                    assert_eq!(
                        idx.next_position(p),
                        sched.next_position(u, p),
                        "n={n} top={top} u={u} p={p} (period {period})"
                    );
                }
            }
        }
    }

    #[test]
    fn next_position_cache_switches_to_index_past_one_period() {
        let provider = FamilyProvider::random_with_seed(9);
        let sched = DoublingSchedule::new(&provider, 32, 3);
        let period = sched.period();
        for u in [0u32, 7, 31] {
            let mut cache = NextPositionCache::default();
            let mut q0 = 0u64;
            // Monotone queries across several periods must match the walk.
            while q0 < 4 * period {
                assert_eq!(
                    cache.query(&sched, u, q0),
                    sched.next_position(u, q0),
                    "u={u} q0={q0}"
                );
                q0 += 1 + period / 5;
            }
            assert!(
                cache.index.is_some(),
                "cache never built the index despite outliving a period"
            );
        }
    }

    #[test]
    fn works_with_kautz_singleton_provider() {
        let n = 32;
        let p = SelectAmongFirst::new(n, 0, FamilyProvider::KautzSingleton);
        let pattern = WakePattern::simultaneous(&ids(&[3, 19, 27]), 0).unwrap();
        let out = sim(n).run(&p, &pattern, 0).unwrap();
        assert!(out.solved());
    }

    #[test]
    fn any_member_scan_matches_per_station_minimum() {
        // The class scanner's answer must equal the min over members of the
        // per-station next_position, for monotone query points and any
        // budget (budget only splits the work, never changes the answer).
        let sched = DoublingSchedule::new(&FamilyProvider::random_with_seed(7), 48, 3);
        let members = Members::from_runs(vec![(3, 5), (17, 18), (40, 44)]);
        for budget in [1u64, 7, 1 << 16] {
            let mut scan = AnyMemberScan::default();
            let mut q0 = 0u64;
            while q0 < 2 * sched.period() {
                let expect = members
                    .iter()
                    .filter_map(|u| sched.next_position(u.0, q0))
                    .min();
                // Drive the budgeted scan to a definitive answer, checking
                // each SilentBelow bound strictly advances.
                let got = loop {
                    match scan.next_hit(&sched, &members, q0, u64::MAX, budget) {
                        Scan::Hit(q) => break Some(q),
                        Scan::Never => break None,
                        Scan::SilentBelow(b) => assert!(b > q0, "stalled at q0={q0}"),
                    }
                };
                assert_eq!(got, expect, "budget={budget} q0={q0}");
                q0 += 1 + sched.period() / 7;
            }
        }
    }

    #[test]
    fn class_engine_matches_concrete() {
        let n = 64u32;
        for provider in [
            FamilyProvider::random_with_seed(11),
            FamilyProvider::KautzSingleton,
        ] {
            let p = SelectAmongFirst::new(n, 20, provider);
            // A participating batch at s plus silent latecomers.
            let pattern = WakePattern::new(vec![
                (StationId(2), 20),
                (StationId(9), 20),
                (StationId(33), 20),
                (StationId(60), 20),
                (StationId(5), 21),
                (StationId(48), 23),
            ])
            .unwrap();
            let cfg = SimConfig::new(n).with_max_slots(2_000).with_transcript();
            let concrete = Simulator::new(cfg.clone()).run(&p, &pattern, 0).unwrap();
            let classed = Simulator::new(cfg.with_classes())
                .run(&p, &pattern, 0)
                .unwrap();
            assert_eq!(concrete.first_success, classed.first_success);
            assert_eq!(concrete.winner, classed.winner);
            assert_eq!(concrete.transmissions, classed.transmissions);
            assert_eq!(concrete.per_station_tx, classed.per_station_tx);
            assert_eq!(concrete.transcript, classed.transcript);
            // 3 wake slots ⇒ at most 3 class units ever live.
            assert!(classed.peak_units <= 3);
        }
    }
}
