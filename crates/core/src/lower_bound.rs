//! Theorem 2.1's lower-bound adversary, executable form.
//!
//! **Theorem 2.1.** *The wake-up problem requires `min{k, n−k+1}` rounds,
//! even if the stations start simultaneously and `k` and `n` are known.*
//!
//! The proof builds a chain of `k`-sets: start from any `X`; a correct
//! algorithm must have a round `r` whose transmitter set `T_r` satisfies
//! `X ∩ T_r = {x}`; replace the selected `x` by a *fresh* element `y` of the
//! complement, forcing the algorithm to spend another round on
//! `X' = (X∖{x}) ∪ {y}`; iterate `min{k, n−k}` times.
//!
//! [`SwapChainAdversary`] executes that chain against any **oblivious
//! schedule** (every algorithm in this paper is oblivious) under
//! simultaneous start. When replacing `x`, it picks the fresh `y ∉ T_r`
//! whenever one exists, which guarantees that round `r` does *not* isolate
//! the successor set — the mechanism by which the chain forces new rounds.
//!
//! The adversary returns the whole chain with each set's first isolation
//! round; experiments (EXP-LB) report the maximum and the number of distinct
//! isolation rounds against `min{k, n−k+1}`. For round-robin the bound is
//! met with equality (pinned by a test).

use selectors::schedule::Schedule;

/// One link of the adversarial chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainStep {
    /// The target set `X` of this step (sorted).
    pub x: Vec<u32>,
    /// The first round `r` with `|X ∩ T_r| = 1`, or `None` if the schedule
    /// never isolated `X` within the horizon (a correctness violation for a
    /// wake-up algorithm under simultaneous start).
    pub isolation_round: Option<u64>,
    /// The station isolated at that round.
    pub isolated: Option<u32>,
}

/// The outcome of running the swap-chain adversary.
#[derive(Clone, Debug)]
pub struct SwapChainResult {
    /// Every step of the chain, in order.
    pub chain: Vec<ChainStep>,
    /// `max` over steps of the first isolation round (+1 to convert a round
    /// index into a round count) — a certified lower-bound witness for this
    /// schedule: some `k`-set forces at least this many rounds.
    pub forced_rounds: u64,
    /// Number of distinct isolation rounds across the chain (the proof's
    /// counting measure).
    pub distinct_rounds: usize,
    /// `true` if some step was never isolated within the horizon.
    pub found_unisolated_set: bool,
}

/// The Theorem 2.1 adversary for oblivious schedules, simultaneous start.
#[derive(Clone, Debug)]
pub struct SwapChainAdversary {
    n: u32,
    k: u32,
    /// Scan limit per step when searching for the isolation round.
    pub horizon: u64,
}

impl SwapChainAdversary {
    /// An adversary for `k`-subsets of `{0,…,n-1}` with a default horizon of
    /// `4·n·(log n + 2)²` rounds per step.
    pub fn new(n: u32, k: u32) -> Self {
        assert!(n >= 1);
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        let log = u64::from(selectors::math::log_n(u64::from(n)));
        SwapChainAdversary {
            n,
            k,
            horizon: 4 * u64::from(n) * (log + 2) * (log + 2),
        }
    }

    /// The theoretical bound this adversary demonstrates:
    /// `min{k, n−k+1}` rounds.
    pub fn bound(&self) -> u64 {
        u64::from(self.k.min(self.n - self.k + 1))
    }

    /// Transmitter set of `schedule` at round `r`, restricted to `x`
    /// (simultaneous start at round 0: awake set = `x` throughout).
    fn isolates(&self, schedule: &dyn Schedule, x: &[u32], r: u64) -> Option<u32> {
        let mut found = None;
        for &u in x {
            if schedule.transmits(u, r) {
                if found.is_some() {
                    return None;
                }
                found = Some(u);
            }
        }
        found
    }

    /// First round in `[0, horizon)` isolating `x`, with the isolated station.
    fn first_isolation(&self, schedule: &dyn Schedule, x: &[u32]) -> Option<(u64, u32)> {
        (0..self.horizon).find_map(|r| self.isolates(schedule, x, r).map(|w| (r, w)))
    }

    /// Run the swap chain against `schedule`.
    pub fn run(&self, schedule: &dyn Schedule) -> SwapChainResult {
        assert_eq!(schedule.n(), self.n, "schedule universe mismatch");
        let k = self.k as usize;
        let mut x: Vec<u32> = (0..self.k).collect();
        // Fresh complement elements, consumed one per step (proof: "a new,
        // i.e. not considered before, element of the complement").
        let mut fresh: Vec<u32> = (self.k..self.n).collect();
        let mut chain = Vec::new();
        let mut forced: u64 = 0;
        let mut rounds_used = std::collections::BTreeSet::new();
        let mut found_unisolated = false;

        loop {
            let step = match self.first_isolation(schedule, &x) {
                Some((r, w)) => {
                    forced = forced.max(r + 1);
                    rounds_used.insert(r);
                    ChainStep {
                        x: x.clone(),
                        isolation_round: Some(r),
                        isolated: Some(w),
                    }
                }
                None => {
                    found_unisolated = true;
                    ChainStep {
                        x: x.clone(),
                        isolation_round: None,
                        isolated: None,
                    }
                }
            };
            let (r, w) = (step.isolation_round, step.isolated);
            chain.push(step);
            let (Some(r), Some(w)) = (r, w) else { break };
            if fresh.is_empty() || chain.len() > k.min((self.n - self.k) as usize) {
                break;
            }
            // Prefer a fresh y outside T_r so that round r cannot isolate
            // the successor set.
            let pick = fresh
                .iter()
                .position(|&y| !schedule.transmits(y, r))
                .unwrap_or(0);
            let y = fresh.swap_remove(pick);
            let pos = x.iter().position(|&e| e == w).expect("w ∈ X");
            x[pos] = y;
            x.sort_unstable();
        }

        SwapChainResult {
            forced_rounds: forced,
            distinct_rounds: rounds_used.len(),
            found_unisolated_set: found_unisolated,
            chain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selectors::schedule::RoundRobinSchedule;

    #[test]
    fn bound_formula() {
        assert_eq!(SwapChainAdversary::new(32, 4).bound(), 4);
        assert_eq!(SwapChainAdversary::new(32, 30).bound(), 3);
        assert_eq!(SwapChainAdversary::new(32, 32).bound(), 1);
        assert_eq!(SwapChainAdversary::new(10, 5).bound(), 5);
    }

    #[test]
    fn round_robin_is_forced_to_the_bound_small_k() {
        // k ≤ n−k: the chain has min{k, n−k}+1 steps with isolation rounds
        // 0, 1, …, so forced_rounds = chain length ≥ min{k, n−k+1}.
        let (n, k) = (16u32, 5u32);
        let adv = SwapChainAdversary::new(n, k);
        let res = adv.run(&RoundRobinSchedule::new(n));
        assert!(!res.found_unisolated_set);
        assert_eq!(res.chain.len(), (k.min(n - k) + 1) as usize);
        assert_eq!(res.forced_rounds, res.chain.len() as u64);
        assert!(res.forced_rounds >= adv.bound());
        assert_eq!(res.distinct_rounds, res.chain.len());
    }

    #[test]
    fn round_robin_large_k_bounded_by_n_minus_k_plus_1() {
        let (n, k) = (16u32, 14u32);
        let adv = SwapChainAdversary::new(n, k);
        let res = adv.run(&RoundRobinSchedule::new(n));
        assert!(!res.found_unisolated_set);
        // min{k, n−k+1} = 3.
        assert!(res.forced_rounds >= adv.bound());
        // The chain is limited by the n−k fresh elements: n−k+1 = 3 steps.
        assert_eq!(res.chain.len(), (n - k + 1) as usize);
    }

    #[test]
    fn chain_swaps_isolated_for_fresh() {
        let (n, k) = (8u32, 3u32);
        let adv = SwapChainAdversary::new(n, k);
        let res = adv.run(&RoundRobinSchedule::new(n));
        for pair in res.chain.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let w = a.isolated.unwrap();
            assert!(!b.x.contains(&w), "isolated {w} not removed");
            assert_eq!(b.x.len(), k as usize);
            // Exactly one new element entered.
            let new: Vec<_> = b.x.iter().filter(|e| !a.x.contains(e)).collect();
            assert_eq!(new.len(), 1);
        }
    }

    #[test]
    fn successor_not_isolated_at_same_round() {
        // The fresh pick avoids T_r, so round r must not isolate X'.
        let (n, k) = (12u32, 4u32);
        let adv = SwapChainAdversary::new(n, k);
        let schedule = RoundRobinSchedule::new(n);
        let res = adv.run(&schedule);
        for pair in res.chain.windows(2) {
            let r = pair[0].isolation_round.unwrap();
            let hits = pair[1]
                .x
                .iter()
                .filter(|&&u| schedule.transmits(u, r))
                .count();
            assert_ne!(hits, 1, "round {r} still isolates the successor");
        }
    }

    #[test]
    fn selective_family_schedules_also_forced() {
        // The adversary works against any oblivious schedule, e.g. a
        // selective-family schedule: forced rounds ≥ 1 trivially, and the
        // chain completes without unisolated sets (families of k' = n are
        // complete for simultaneous start... we use a greedy family).
        use selectors::greedy::GreedyBuilder;
        use selectors::schedule::{FamilySchedule, ScheduleExt};
        let (n, k) = (10u32, 3u32);
        let fam = GreedyBuilder::new(n, k).build().unwrap();
        let sched = FamilySchedule::new(fam).cycle();
        let adv = SwapChainAdversary::new(n, k);
        let res = adv.run(&sched);
        assert!(!res.found_unisolated_set);
        assert!(res.forced_rounds >= 1);
        // Distinct rounds across the chain reflect the counting argument.
        assert!(res.distinct_rounds >= 2);
    }

    #[test]
    fn unisolating_schedule_is_reported() {
        // A schedule in which everyone always transmits can never isolate.
        struct AllTx(u32);
        impl Schedule for AllTx {
            fn n(&self) -> u32 {
                self.0
            }
            fn len(&self) -> Option<u64> {
                None
            }
            fn transmits(&self, _u: u32, _j: u64) -> bool {
                true
            }
        }
        let adv = SwapChainAdversary::new(8, 2);
        let res = adv.run(&AllTx(8));
        assert!(res.found_unisolated_set);
        assert_eq!(res.forced_rounds, 0);
    }
}
