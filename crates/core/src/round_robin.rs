//! Round-robin (time-division multiplexing), the baseline component.
//!
//! Station `u` transmits at global slot `t` iff `t ≡ u (mod n)`. There is
//! never more than one transmitter per slot, so the first slot whose owner is
//! awake solves wake-up. The paper (§3) observes:
//!
//! * for any set `X` of `k` stations waking **simultaneously**, at most
//!   `n − k` slots are wasted (their owners are in the complement of `X`),
//!   so round-robin completes within `n − k + 1` rounds — matching the
//!   Theorem 2.1 lower bound `min{k, n−k+1}` for `k > n/c`;
//! * under **staggered** wake-ups the guarantee is `n` rounds: within any
//!   window of `n` slots from `s`, the station awake at `s` gets its turn.
//!
//! Round-robin needs only the global clock and `n` — no `s`, no `k` — which
//! is why both Scenario A and Scenario B algorithms interleave with it to
//! stay optimal at large `k`.

use mac_sim::{
    Action, ClassStation, MemberRemoval, Members, Protocol, Slot, Station, StationId, TxHint,
    TxTally, TxWord,
};

/// The round-robin protocol over `n` stations.
#[derive(Clone, Copy, Debug)]
pub struct RoundRobin {
    n: u32,
}

impl RoundRobin {
    /// Round-robin over `n ≥ 1` stations.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1, "round-robin needs n ≥ 1");
        RoundRobin { n }
    }

    /// The number of stations.
    pub fn n(&self) -> u32 {
        self.n
    }
}

struct RoundRobinStation {
    id: StationId,
    n: u32,
}

impl Station for RoundRobinStation {
    fn wake(&mut self, _sigma: Slot) {}

    fn act(&mut self, t: Slot) -> Action {
        Action::from_bool(t % u64::from(self.n) == u64::from(self.id.0))
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // The next slot ≡ id (mod n), in O(1): the schedule is oblivious,
        // so the engine can jump straight to this station's turn.
        TxHint::at(selectors::math::next_congruent(
            after,
            u64::from(self.id.0),
            u64::from(self.n),
        ))
    }

    fn fill_tx_word(&mut self, base: Slot, width: u32) -> Option<TxWord> {
        // The whole tile in closed form: bit j set iff base + j ≡ id (mod n).
        let n = u64::from(self.n);
        let mut bits = 0u64;
        let mut j = (u64::from(self.id.0) + n - base % n) % n;
        while j < u64::from(width) {
            bits |= 1u64 << j;
            j += n;
        }
        Some(TxWord::forever(bits))
    }
}

/// One equivalence class of round-robin stations: the schedule is fully
/// determined by `(t mod n)`, so a whole wake batch — any member set — is a
/// single unit. At most one member (the slot's owner) ever transmits, and
/// the class's next transmission is the earliest slot whose owner is a
/// member: O(log runs) via the RLE member set, O(1) state per class.
struct RoundRobinClass {
    members: Members,
    n: u32,
}

impl ClassStation for RoundRobinClass {
    fn weight(&self) -> u64 {
        self.members.count()
    }

    fn wake(&mut self, _sigma: Slot) {}

    fn act(&mut self, t: Slot, tally: &mut TxTally) {
        let owner = (t % u64::from(self.n)) as u32;
        if self.members.contains(owner) {
            tally.push(StationId(owner));
        }
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        let n = u64::from(self.n);
        let r = (after % n) as u32;
        // First member turn in the rest of this cycle, else wrap to the
        // smallest member's turn in the next cycle.
        let slot = match self.members.next_at_or_after(r) {
            Some(x) if u64::from(x) < n => after + u64::from(x - r),
            _ => {
                let m0 = self.members.first().expect("class has members");
                after + (n - u64::from(r)) + u64::from(m0)
            }
        };
        TxHint::at(slot)
    }

    fn remove_member(&mut self, id: StationId) -> MemberRemoval {
        // The schedule is oblivious, so dropping a member just shrinks the
        // RLE set; the remaining members' turns are unchanged.
        if self.members.remove(id.0) {
            MemberRemoval::Removed {
                emptied: self.members.is_empty(),
            }
        } else {
            MemberRemoval::NotMember
        }
    }
}

impl Protocol for RoundRobin {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(RoundRobinStation { id, n: self.n })
    }

    fn class_station(&self, members: &Members, _run_seed: u64) -> Option<Box<dyn ClassStation>> {
        Some(Box::new(RoundRobinClass {
            members: members.clone(),
            n: self.n,
        }))
    }

    fn name(&self) -> String {
        format!("round-robin(n={})", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    #[test]
    fn never_collides() {
        let n = 16;
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(64).with_transcript());
        // Wake everyone; round-robin still has ≤ 1 transmitter per slot.
        let all: Vec<StationId> = (0..n).map(StationId).collect();
        let pattern = WakePattern::simultaneous(&all, 0).unwrap();
        let out = sim.run(&RoundRobin::new(n), &pattern, 0).unwrap();
        assert!(out.solved());
        assert_eq!(out.collisions, 0);
    }

    #[test]
    fn simultaneous_start_bound_n_minus_k_plus_1() {
        // Worst simultaneous case: the k awake stations own the *last* k
        // turns of the cycle ⇒ exactly n − k silent slots then success.
        let (n, k) = (32u32, 4usize);
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(100));
        let last_k: Vec<StationId> = (n - k as u32..n).map(StationId).collect();
        let pattern = WakePattern::simultaneous(&last_k, 0).unwrap();
        let out = sim.run(&RoundRobin::new(n), &pattern, 0).unwrap();
        assert_eq!(out.latency(), Some(u64::from(n) - k as u64));
        // ≤ n − k + 1 rounds counting the success slot itself:
        assert!(out.latency().unwrap() < u64::from(n) - k as u64 + 1);
    }

    #[test]
    fn dynamic_arrivals_bound_n() {
        // Under any wake pattern, success within n slots of s.
        let n = 24u32;
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(u64::from(n) + 1));
        for gap in [1u64, 3, 10] {
            let pattern = WakePattern::staggered(&ids(&[5, 1, 20, 13]), 9, gap).unwrap();
            let out = sim.run(&RoundRobin::new(n), &pattern, 0).unwrap();
            assert!(out.solved(), "gap={gap}");
            assert!(out.latency().unwrap() < u64::from(n), "gap={gap}");
        }
    }

    #[test]
    fn winner_is_slot_owner() {
        let n = 8u32;
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(20));
        let pattern = WakePattern::simultaneous(&ids(&[3, 6]), 0).unwrap();
        let out = sim.run(&RoundRobin::new(n), &pattern, 0).unwrap();
        assert_eq!(out.first_success, Some(3));
        assert_eq!(out.winner, Some(StationId(3)));
    }

    #[test]
    fn class_engine_matches_concrete() {
        let n = 32u32;
        let proto = RoundRobin::new(n);
        for s in [0u64, 5, 31] {
            let pattern = WakePattern::staggered(&ids(&[7, 30, 2, 19]), s, 3).unwrap();
            let cfg = SimConfig::new(n).with_max_slots(200).with_transcript();
            let concrete = Simulator::new(cfg.clone())
                .run(&proto, &pattern, 0)
                .unwrap();
            let classed = Simulator::new(cfg.with_classes())
                .run(&proto, &pattern, 0)
                .unwrap();
            assert_eq!(concrete.first_success, classed.first_success, "s={s}");
            assert_eq!(concrete.winner, classed.winner);
            assert_eq!(concrete.transmissions, classed.transmissions);
            assert_eq!(concrete.per_station_tx, classed.per_station_tx);
            assert_eq!(concrete.transcript, classed.transcript);
            // 4 stations in 3 batches-with-distinct-slots ⇒ ≤ 4 units, and
            // aggregation keeps it below the station count when batched.
            assert!(classed.peak_units <= 4);
        }
        // One mega batch: the whole floor is a single unit.
        let pattern = WakePattern::range(0, n, 3).unwrap();
        let cfg = SimConfig::new(n).with_max_slots(64).with_classes();
        let out = Simulator::new(cfg).run(&proto, &pattern, 0).unwrap();
        assert_eq!(out.peak_units, 1);
        assert!(out.solved());
    }

    #[test]
    fn k_equals_one_latency_below_n() {
        let n = 10u32;
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(30));
        for s in [0u64, 1, 7, 23] {
            for id in [0u32, 4, 9] {
                let pattern = WakePattern::simultaneous(&ids(&[id]), s).unwrap();
                let out = sim.run(&RoundRobin::new(n), &pattern, 0).unwrap();
                let expected = (u64::from(id) + u64::from(n) - s % u64::from(n)) % u64::from(n);
                assert_eq!(out.latency(), Some(expected), "s={s} id={id}");
            }
        }
    }
}
