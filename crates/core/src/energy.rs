//! Energy-capped protocols — the power-sensitive extension.
//!
//! The authors' companion line of work (*Towards Power-Sensitive
//! Communication on a Multiple-Access Channel*, ICDCS 2010 — reference
//! \[19\] of the paper) asks what happens when stations may only afford a
//! bounded number of transmissions. [`EnergyCapped`] wraps any protocol and
//! enforces a hard per-station budget: once a station has transmitted
//! `budget` times, it falls silent forever.
//!
//! This turns the energy metric (`Outcome::transmissions`,
//! `EnergyStats::max_per_station`) into a *constraint* and lets EXP-ABL
//! measure the latency/energy Pareto frontier: the paper's deterministic
//! algorithms keep solving wake-up under surprisingly small budgets on
//! typical patterns (their schedules are sparse by design), while
//! high-energy randomized baselines start failing.

use mac_sim::{Action, Feedback, Protocol, Slot, Station, StationId, TxHint};

/// A wrapper enforcing a per-station transmission budget on any protocol.
#[derive(Clone, Debug)]
pub struct EnergyCapped<P> {
    inner: P,
    budget: u64,
}

impl<P: Protocol> EnergyCapped<P> {
    /// Cap every station of `inner` at `budget ≥ 1` transmissions.
    pub fn new(inner: P, budget: u64) -> Self {
        assert!(budget >= 1, "a zero budget can never solve wake-up");
        EnergyCapped { inner, budget }
    }

    /// The per-station budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

struct CappedStation {
    inner: Box<dyn Station>,
    remaining: u64,
}

impl Station for CappedStation {
    fn wake(&mut self, sigma: Slot) {
        self.inner.wake(sigma);
    }

    fn act(&mut self, t: Slot) -> Action {
        // The inner station is always polled (its local state must advance),
        // but its transmissions are suppressed once the budget is spent.
        let action = self.inner.act(t);
        if action.is_transmit() {
            if self.remaining == 0 {
                return Action::Listen;
            }
            self.remaining -= 1;
        }
        action
    }

    fn feedback(&mut self, t: Slot, fb: Feedback) {
        self.inner.feedback(t, fb);
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        if self.remaining == 0 {
            // Budget spent: silent forever, whatever the inner schedule says.
            return TxHint::never();
        }
        // With budget left the wrapper is transparent: the inner station's
        // next transmission — and its validity scope — is also ours.
        self.inner.next_transmission(after)
    }
}

impl<P: Protocol> Protocol for EnergyCapped<P> {
    fn station(&self, id: StationId, seed: u64) -> Box<dyn Station> {
        Box::new(CappedStation {
            inner: self.inner.station(id, seed),
            remaining: self.budget,
        })
    }

    fn name(&self) -> String {
        format!(
            "energy-capped({}, budget={})",
            self.inner.name(),
            self.budget
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family_provider::FamilyProvider;
    use crate::randomized::Aloha;
    use crate::round_robin::RoundRobin;
    use crate::wakeup_n::WakeupN;
    use crate::wakeup_with_k::WakeupWithK;
    use crate::waking_matrix::MatrixParams;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    #[test]
    fn budget_is_enforced_exactly() {
        // An always-transmitter capped at 3 transmits exactly 3 times.
        struct Always;
        impl Protocol for Always {
            fn station(&self, _id: StationId, _seed: u64) -> Box<dyn Station> {
                Box::new(mac_sim::station::AlwaysTransmit)
            }
            fn name(&self) -> String {
                "always".into()
            }
        }
        let capped = EnergyCapped::new(Always, 3);
        let cfg = SimConfig::new(4).with_max_slots(20).with_transcript();
        // Two stations so no slot succeeds and the run uses the full cap.
        let pattern = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let out = Simulator::new(cfg).run(&capped, &pattern, 0).unwrap();
        assert!(!out.solved());
        assert_eq!(out.transmissions, 6); // 3 per station
        for &(_, tx) in &out.per_station_tx {
            assert_eq!(tx, 3);
        }
    }

    #[test]
    fn round_robin_needs_budget_one() {
        // Round-robin transmits at most once before solving: budget 1 is
        // enough on any pattern.
        let n = 32u32;
        let capped = EnergyCapped::new(RoundRobin::new(n), 1);
        let sim = Simulator::new(SimConfig::new(n));
        for s in [0u64, 13] {
            let pattern = WakePattern::staggered(&ids(&[4, 9, 30]), s, 5).unwrap();
            let out = sim.run(&capped, &pattern, 0).unwrap();
            assert!(out.solved(), "s={s}");
        }
    }

    #[test]
    fn deterministic_algorithms_survive_moderate_budgets() {
        let n = 64u32;
        let k = 4u32;
        let sim = Simulator::new(SimConfig::new(n));
        let pattern = WakePattern::simultaneous(&ids(&[3, 19, 40, 60]), 0).unwrap();
        // Uncapped energy use per station:
        let base = WakeupWithK::new(n, k, FamilyProvider::default());
        let uncapped = sim.run(&base, &pattern, 0).unwrap();
        let max_tx = uncapped
            .per_station_tx
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap();
        // With exactly that budget, the run is unchanged.
        let capped = EnergyCapped::new(
            WakeupWithK::new(n, k, FamilyProvider::default()),
            max_tx.max(1),
        );
        let out = sim.run(&capped, &pattern, 0).unwrap();
        assert_eq!(out.first_success, uncapped.first_success);
    }

    #[test]
    fn starving_budget_can_break_wakeup() {
        // Two ALOHA stations with budget 1 can both burn their single
        // transmission in the same slot and then the channel stays silent.
        let n = 8u32;
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(500));
        let pattern = WakePattern::simultaneous(&ids(&[0, 1]), 0).unwrap();
        let mut failures = 0;
        for seed in 0..40u64 {
            let capped = EnergyCapped::new(Aloha::new(n, 2), 1);
            let out = sim.run(&capped, &pattern, seed).unwrap();
            if !out.solved() {
                failures += 1;
                // Once both budgets are burned, everything is silence.
                assert!(out.transmissions <= 2);
            }
        }
        assert!(
            failures > 0,
            "budget-1 ALOHA never failed in 40 runs — statistically implausible"
        );
    }

    #[test]
    fn wakeup_n_budget_latency_tradeoff() {
        // Tight budgets may delay or break wake-up, never accelerate it
        // beyond the uncapped run... strictly: capping can only remove
        // transmissions, so the first *success* can actually move earlier
        // (a collision partner may be silenced). We assert solvability
        // under a generous budget and valid accounting under tight ones.
        let n = 128u32;
        let sim = Simulator::new(SimConfig::new(n));
        let pattern = WakePattern::simultaneous(&ids(&[5, 50, 100]), 0).unwrap();
        let generous = EnergyCapped::new(WakeupN::new(MatrixParams::new(n)), 1_000);
        let out = sim.run(&generous, &pattern, 0).unwrap();
        assert!(out.solved());
        let tight = EnergyCapped::new(WakeupN::new(MatrixParams::new(n)), 1);
        let out = sim.run(&tight, &pattern, 0).unwrap();
        assert!(out.per_station_tx.iter().all(|&(_, c)| c <= 1));
    }

    #[test]
    fn name_mentions_budget() {
        let capped = EnergyCapped::new(RoundRobin::new(8), 5);
        assert!(capped.name().contains("budget=5"));
        assert_eq!(capped.budget(), 5);
        assert_eq!(capped.inner().n(), 8);
    }

    #[test]
    #[should_panic(expected = "zero budget")]
    fn zero_budget_is_rejected() {
        EnergyCapped::new(RoundRobin::new(8), 0);
    }
}
