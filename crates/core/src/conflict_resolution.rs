//! Full conflict resolution (Komlós & Greenberg \[25\]): **every** awake
//! station must transmit successfully, not just one.
//!
//! This is the problem of the paper's direct predecessor: "the typical
//! situation when a subset of `k` among `n` stations are awakened and have
//! messages, and all of them need to be sent (successfully) to the multiple
//! access channel as soon as possible", solved there in
//! `O(k + k·log(n/k))` by an existential non-adaptive schedule (stopped at
//! the first success, their algorithm *is* a wake-up algorithm — §1).
//!
//! [`FullResolution`] is the natural executable form built from this
//! repository's selective families: stations cycle the doubling schedule
//! `⟨F₁, …, F_top⟩` and **retire** once they hear their own message echoed
//! back ([`Feedback::Heard`] carrying their ID — every station receives a
//! successful transmission, including its sender). As stations retire, the
//! live contention `|X|` shrinks, and the family matching the shrunken size
//! keeps isolating fresh stations. Each full cycle pass retires at least one
//! station whenever `|X| ≥ 1` (some family brackets `|X|`), so everyone is
//! resolved within `O(k)` passes of length `O(k log(n/k))` in the worst
//! case — and empirically in a small constant number of passes (EXP-KG
//! regenerates the measured shape; the optimal KG construction itself is
//! existential, see DESIGN.md §4).
//!
//! Run under [`StopRule::AllResolved`](mac_sim::engine::StopRule) — e.g.
//! `SimConfig::new(n).until_all_resolved()` — and read
//! [`Outcome::full_resolution_latency`](mac_sim::Outcome::full_resolution_latency).
//!
//! [`RetiringRoundRobin`] is the matching baseline: plain time division with
//! retirement, resolving everyone within `n` slots of the last wake-up.

use crate::family_provider::FamilyProvider;
use crate::select_among_first::{DoublingSchedule, NextPositionCache};
use mac_sim::{
    Action, ClassStation, Feedback, MemberRemoval, Members, Protocol, Slot, Station, StationId,
    TxHint, TxTally, Until,
};
use selectors::math::{log_n, next_congruent};
use std::sync::Arc;

/// Selective-family conflict resolution with retirement on own success.
#[derive(Clone, Debug)]
pub struct FullResolution {
    n: u32,
    k: u32,
    schedule: Arc<DoublingSchedule>,
}

impl FullResolution {
    /// Build for `n` stations and contention bound `k` (the schedule runs
    /// families `F₁ … F_⌈log k⌉`, cycled).
    pub fn new(n: u32, k: u32, provider: FamilyProvider) -> Self {
        let top = Self::top(n, k);
        FullResolution {
            n,
            k,
            schedule: Arc::new(DoublingSchedule::new(&provider, n, top)),
        }
    }

    /// Like [`new`](Self::new), but the resolution schedule comes out of
    /// `cache` — built once per `(n, k, provider)` per ensemble and shared
    /// across runs, **including** the per-station position indices that the
    /// resolver's success re-queries lean on.
    pub fn cached(
        n: u32,
        k: u32,
        provider: &FamilyProvider,
        cache: &crate::cache::ConstructionCache,
    ) -> Self {
        let top = Self::top(n, k);
        FullResolution {
            n,
            k,
            schedule: cache.schedule(provider, n, top),
        }
    }

    fn top(n: u32, k: u32) -> u32 {
        assert!(n >= 1);
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        if k == 1 {
            0
        } else {
            log_n(u64::from(k))
        }
    }

    /// The cyclic period of the underlying schedule.
    pub fn period(&self) -> u64 {
        self.schedule.period()
    }
}

struct FullResolutionStation {
    id: StationId,
    done: bool,
    go_slot: Slot,
    schedule: Arc<DoublingSchedule>,
    /// Memoized schedule `next_position` answer — the schedule part of the
    /// hint is oblivious, so a computed hit survives success re-queries.
    cache: NextPositionCache,
}

impl Station for FullResolutionStation {
    fn wake(&mut self, sigma: Slot) {
        // Same boundary wait as wait_and_go: keeps family participant sets
        // stable within each family execution.
        self.go_slot = self.schedule.next_boundary(sigma);
    }

    fn act(&mut self, t: Slot) -> Action {
        if self.done || t < self.go_slot {
            return Action::Listen;
        }
        Action::from_bool(self.schedule.transmits(self.id.0, t))
    }

    fn feedback(&mut self, _t: Slot, fb: Feedback) {
        if fb.is_own_success(self.id) {
            self.done = true; // message delivered: retire
        }
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        // Retirement is permanent; between successes the schedule walk is
        // oblivious, and only a success (our own) can change it — exactly
        // the `Until::NextSuccess` contract, which is what lets
        // Komlós–Greenberg runs skip their silent slots.
        if self.done {
            return TxHint::never();
        }
        let from = after.max(self.go_slot);
        match self.cache.query(&self.schedule, self.id.0, from) {
            Some(p) => TxHint::At(p, Until::NextSuccess),
            None => TxHint::Never(Until::NextSuccess),
        }
    }
}

impl Protocol for FullResolution {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(FullResolutionStation {
            id,
            done: false,
            go_slot: 0,
            schedule: Arc::clone(&self.schedule),
            cache: NextPositionCache::default(),
        })
    }

    fn name(&self) -> String {
        format!("full-resolution(n={}, k={})", self.n, self.k)
    }
}

/// Baseline: round-robin with retirement — every awake station transmits in
/// its own turn exactly once (the time-division-multiplexing solution the
/// paper's introduction contrasts against).
#[derive(Clone, Copy, Debug)]
pub struct RetiringRoundRobin {
    n: u32,
}

impl RetiringRoundRobin {
    /// Time division over `n` stations with retirement.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1);
        RetiringRoundRobin { n }
    }
}

struct RetiringRoundRobinStation {
    id: StationId,
    n: u32,
    done: bool,
}

impl Station for RetiringRoundRobinStation {
    fn wake(&mut self, _sigma: Slot) {}

    fn act(&mut self, t: Slot) -> Action {
        Action::from_bool(!self.done && t % u64::from(self.n) == u64::from(self.id.0))
    }

    fn feedback(&mut self, _t: Slot, fb: Feedback) {
        if fb.is_own_success(self.id) {
            self.done = true;
        }
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        if self.done {
            return TxHint::never();
        }
        TxHint::At(
            next_congruent(after, u64::from(self.id.0), u64::from(self.n)),
            Until::NextSuccess,
        )
    }
}

/// One equivalence class of retiring round-robin stations — the textbook
/// **lazy split**: all members share the oblivious `t ≡ u (mod n)` schedule
/// until one succeeds, at which point that member retires out of the RLE
/// member set ([`Members::remove`] — the degenerate split: the "resolved"
/// half needs no unit because retired stations are silent forever). State
/// stays O(runs) however many members resolve.
struct RetiringRoundRobinClass {
    members: Members,
    n: u32,
}

impl RetiringRoundRobinClass {
    /// Earliest slot `≥ after` owned by a live member.
    fn next_turn(&self, after: Slot) -> Option<Slot> {
        let first = self.members.first()?;
        let n = u64::from(self.n);
        let r = (after % n) as u32;
        Some(match self.members.next_at_or_after(r) {
            Some(x) if u64::from(x) < n => after + u64::from(x - r),
            _ => after + (n - u64::from(r)) + u64::from(first),
        })
    }
}

impl ClassStation for RetiringRoundRobinClass {
    fn weight(&self) -> u64 {
        self.members.count()
    }

    fn wake(&mut self, _sigma: Slot) {}

    fn act(&mut self, t: Slot, tally: &mut TxTally) {
        let owner = (t % u64::from(self.n)) as u32;
        if self.members.contains(owner) {
            tally.push(StationId(owner));
        }
    }

    fn feedback(&mut self, _t: Slot, fb: Feedback) -> Vec<Box<dyn ClassStation>> {
        if let Feedback::Heard(w) = fb {
            // Only the member that hears *its own* success retires.
            self.members.remove(w.0);
        }
        Vec::new()
    }

    fn next_transmission(&mut self, after: Slot) -> TxHint {
        match self.next_turn(after) {
            Some(slot) => TxHint::At(slot, Until::NextSuccess),
            None => TxHint::never(), // everyone resolved: silent forever
        }
    }

    fn remove_member(&mut self, id: StationId) -> MemberRemoval {
        // A churned member leaves the class exactly the way a retired one
        // does: out of the RLE set, silent forever.
        if self.members.remove(id.0) {
            MemberRemoval::Removed {
                emptied: self.members.is_empty(),
            }
        } else {
            MemberRemoval::NotMember
        }
    }
}

impl Protocol for RetiringRoundRobin {
    fn station(&self, id: StationId, _seed: u64) -> Box<dyn Station> {
        Box::new(RetiringRoundRobinStation {
            id,
            n: self.n,
            done: false,
        })
    }

    fn class_station(&self, members: &Members, _run_seed: u64) -> Option<Box<dyn ClassStation>> {
        Some(Box::new(RetiringRoundRobinClass {
            members: members.clone(),
            n: self.n,
        }))
    }

    fn name(&self) -> String {
        format!("retiring-round-robin(n={})", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn resolve_sim(n: u32) -> Simulator {
        Simulator::new(
            SimConfig::new(n)
                .with_max_slots(500_000)
                .until_all_resolved(),
        )
    }

    #[test]
    fn resolves_every_station_in_a_burst() {
        let n = 64u32;
        for k in [1u32, 2, 4, 8, 16] {
            let p = FullResolution::new(n, k, FamilyProvider::default());
            let chosen: Vec<StationId> = (0..k).map(|i| StationId(i * (n / k))).collect();
            let pattern = WakePattern::simultaneous(&chosen, 9).unwrap();
            let out = resolve_sim(n).run(&p, &pattern, 0).unwrap();
            assert_eq!(out.resolved.len(), k as usize, "k={k}");
            assert!(out.all_resolved_at.is_some(), "k={k}");
            // Every pattern station appears exactly once in `resolved`.
            for &(id, slot) in &out.resolved {
                assert!(chosen.contains(&id));
                assert!(slot >= 9);
            }
        }
    }

    #[test]
    fn resolution_order_has_no_duplicate_winners() {
        let n = 32u32;
        let p = FullResolution::new(n, 8, FamilyProvider::default());
        let chosen: Vec<StationId> = (0..8).map(|i| StationId(i * 4 + 1)).collect();
        let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
        let out = resolve_sim(n).run(&p, &pattern, 0).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &(id, _) in &out.resolved {
            assert!(seen.insert(id), "station {id} resolved twice");
        }
    }

    #[test]
    fn retired_stations_stay_silent() {
        let n = 32u32;
        let p = FullResolution::new(n, 4, FamilyProvider::default());
        let chosen = ids(&[1, 9, 17, 25]);
        let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
        let cfg = SimConfig::new(n)
            .with_max_slots(500_000)
            .until_all_resolved()
            .with_transcript();
        let out = Simulator::new(cfg).run(&p, &pattern, 0).unwrap();
        let tr = out.transcript.unwrap();
        assert!(tr.check_invariants_multi_success().is_empty());
        // After a station's success slot, it never transmits again.
        for &(id, slot) in &out.resolved {
            for r in tr.records().iter().filter(|r| r.slot > slot) {
                assert!(
                    !r.transmitters.contains(&id),
                    "station {id} transmitted after resolving at {slot}"
                );
            }
        }
    }

    #[test]
    fn staggered_arrivals_all_resolve() {
        let n = 64u32;
        let p = FullResolution::new(n, 6, FamilyProvider::default());
        let chosen = ids(&[3, 13, 23, 33, 43, 53]);
        let pattern = WakePattern::staggered(&chosen, 5, 40).unwrap();
        let out = resolve_sim(n).run(&p, &pattern, 1).unwrap();
        assert_eq!(out.resolved.len(), 6);
        // Full resolution cannot finish before the last wake-up.
        assert!(out.all_resolved_at.unwrap() >= pattern.last_wake());
    }

    #[test]
    fn retiring_round_robin_resolves_within_n_of_last_wake() {
        let n = 48u32;
        let chosen = ids(&[0, 7, 20, 33, 47]);
        for s in [0u64, 11] {
            let pattern = WakePattern::simultaneous(&chosen, s).unwrap();
            let out = resolve_sim(n)
                .run(&RetiringRoundRobin::new(n), &pattern, 0)
                .unwrap();
            assert_eq!(out.resolved.len(), 5);
            assert!(
                out.all_resolved_at.unwrap() <= pattern.last_wake() + u64::from(n),
                "s={s}"
            );
            // Round-robin never collides.
            assert_eq!(out.collisions, 0);
        }
    }

    #[test]
    fn selective_resolution_beats_round_robin_for_small_k() {
        // k = 4 on n = 2048: retiring round-robin needs ~n slots; the
        // selective resolver should finish much sooner.
        let n = 2048u32;
        let chosen = ids(&[100, 700, 1300, 1900]);
        let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
        let sel = resolve_sim(n)
            .run(
                &FullResolution::new(n, 4, FamilyProvider::default()),
                &pattern,
                0,
            )
            .unwrap();
        let rr = resolve_sim(n)
            .run(&RetiringRoundRobin::new(n), &pattern, 0)
            .unwrap();
        let sel_t = sel.full_resolution_latency().unwrap();
        let rr_t = rr.full_resolution_latency().unwrap();
        assert!(
            sel_t < rr_t,
            "selective {sel_t} not faster than round-robin {rr_t}"
        );
    }

    #[test]
    fn retiring_class_engine_matches_concrete_with_mid_run_splits() {
        // A contiguous block of members retires one by one: every success
        // punches a hole in the RLE member set (the lazy split) and the
        // outcomes must stay bit-identical to the concrete engine.
        let n = 24u32;
        let proto = RetiringRoundRobin::new(n);
        for pattern in [
            WakePattern::range(4, 12, 2).unwrap(),
            WakePattern::staggered(&ids(&[3, 9, 10, 11, 21]), 0, 7).unwrap(),
        ] {
            let cfg = SimConfig::new(n)
                .with_max_slots(2_000)
                .until_all_resolved()
                .with_transcript();
            let concrete = Simulator::new(cfg.clone())
                .run(&proto, &pattern, 0)
                .unwrap();
            let classed = Simulator::new(cfg.with_classes())
                .run(&proto, &pattern, 0)
                .unwrap();
            assert_eq!(concrete.all_resolved_at, classed.all_resolved_at);
            assert_eq!(concrete.resolved, classed.resolved);
            assert_eq!(concrete.transmissions, classed.transmissions);
            assert_eq!(concrete.per_station_tx, classed.per_station_tx);
            assert_eq!(concrete.transcript, classed.transcript);
        }
    }

    #[test]
    fn first_success_mode_still_stops_early() {
        // The same protocol under the default stop rule behaves as a
        // wake-up algorithm (KG stopped at first success — §1).
        let n = 32u32;
        let p = FullResolution::new(n, 4, FamilyProvider::default());
        let pattern = WakePattern::simultaneous(&ids(&[2, 12, 22, 30]), 0).unwrap();
        let out = Simulator::new(SimConfig::new(n))
            .run(&p, &pattern, 0)
            .unwrap();
        assert!(out.solved());
        assert_eq!(out.resolved.len(), 1);
        assert!(out.all_resolved_at.is_none());
    }
}
