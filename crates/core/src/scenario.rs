//! Knowledge scenarios and the unified protocol facade.
//!
//! The paper's three scenarios differ only in what stations know beyond
//! their own ID and `n`:
//!
//! * [`Scenario::A`] — the first wake-up slot `s` is known;
//! * [`Scenario::B`] — the contention bound `k` is known;
//! * [`Scenario::C`] — nothing else is known.
//!
//! [`scenario_protocol`] instantiates the paper's algorithm for a scenario —
//! the function a downstream user calls when they just want "the right
//! protocol".

use crate::family_provider::FamilyProvider;
use crate::wakeup_n::WakeupN;
use crate::wakeup_with_k::WakeupWithK;
use crate::wakeup_with_s::WakeupWithS;
use crate::waking_matrix::MatrixParams;
use mac_sim::{Protocol, Slot};

/// The knowledge available to every station (beyond its ID and `n`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Scenario A: the first wake-up slot `s` is known to all stations.
    A {
        /// The known first wake-up slot.
        s: Slot,
    },
    /// Scenario B: the maximum number `k` of awake stations is known.
    B {
        /// The known contention bound.
        k: u32,
    },
    /// Scenario C: neither `s` nor `k` is known.
    C,
}

impl Scenario {
    /// The asymptotic worst-case bound the paper proves for this scenario,
    /// as a human-readable string (used in experiment tables).
    pub fn bound(&self) -> &'static str {
        match self {
            Scenario::A { .. } | Scenario::B { .. } => "Θ(k·log(n/k) + 1)",
            Scenario::C => "O(k·log n·log log n)",
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::A { .. } => "A (s known)",
            Scenario::B { .. } => "B (k known)",
            Scenario::C => "C (nothing known)",
        }
    }
}

/// Instantiate the paper's algorithm for `scenario` on `n` stations.
///
/// `seed` drives the combinatorial constructions (selective families /
/// waking matrix); runs are reproducible given `(scenario, n, seed)`.
pub fn scenario_protocol(scenario: Scenario, n: u32, seed: u64) -> Box<dyn Protocol> {
    match scenario {
        Scenario::A { s } => Box::new(WakeupWithS::new(
            n,
            s,
            FamilyProvider::random_with_seed(seed),
        )),
        Scenario::B { k } => Box::new(WakeupWithK::new(
            n,
            k,
            FamilyProvider::random_with_seed(seed),
        )),
        Scenario::C => Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    #[test]
    fn labels_and_bounds() {
        assert_eq!(Scenario::A { s: 0 }.label(), "A (s known)");
        assert_eq!(Scenario::B { k: 4 }.bound(), "Θ(k·log(n/k) + 1)");
        assert_eq!(Scenario::C.bound(), "O(k·log n·log log n)");
    }

    #[test]
    fn all_three_scenarios_solve_the_same_instance() {
        let n = 64u32;
        let s = 20u64;
        let ids: Vec<StationId> = [4u32, 30, 55].map(StationId).into();
        let sim = Simulator::new(SimConfig::new(n));
        for scenario in [Scenario::A { s }, Scenario::B { k: 3 }, Scenario::C] {
            let p = scenario_protocol(scenario, n, 7);
            let pattern = WakePattern::simultaneous(&ids, s).unwrap();
            let out = sim.run(&p, &pattern, 0).unwrap();
            assert!(out.solved(), "{} failed", p.name());
        }
    }

    #[test]
    fn scenario_c_handles_what_it_cannot_know() {
        // Same protocol object (no s, no k) across different instances.
        let n = 64u32;
        let p = scenario_protocol(Scenario::C, n, 3);
        let sim = Simulator::new(SimConfig::new(n));
        for (s, k) in [(0u64, 1usize), (100, 4), (9999, 8)] {
            let ids: Vec<StationId> = (0..k as u32).map(|i| StationId(i * 7)).collect();
            let pattern = WakePattern::simultaneous(&ids, s).unwrap();
            assert!(sim.run(&p, &pattern, 0).unwrap().solved(), "s={s} k={k}");
        }
    }
}
