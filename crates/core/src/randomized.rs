//! Randomized wake-up protocols (§6) and classical randomized baselines.
//!
//! * [`Rpd`] — *Repeated Probability Decrease* (Jurdziński & Stachowiak):
//!   with `ℓ = 2⌈log n⌉`, a station transmits in the `a`-th slot after its
//!   wake-up with probability `2^{-(1 + (a mod ℓ))}`. The probability sweeps
//!   all scales `1/2 … 2^{-2 log n}` every `ℓ` slots, so whatever the number
//!   `m ≤ n` of contenders, each period contains slots where the total
//!   transmission probability is `Θ(1)`; expected wake-up time `O(log n)`.
//! * [`RpdK`] — the same protocol with `ℓ = 2⌈log k⌉` when `k` is known;
//!   expected time `O(log k)`, matching the Kushilevitz–Mansour `Ω(log k)`
//!   lower bound (§6).
//! * [`Aloha`] — slotted ALOHA with fixed probability `1/k` (needs `k`):
//!   the classical memoryless baseline, expected `O(k)` at full contention
//!   but `Θ(e)`-factor optimal when exactly `k` stations contend.
//! * [`BinaryExponentialBackoff`] — Ethernet-style BEB. **Feedback caveat**:
//!   classical BEB requires transmitters to detect their own collisions; the
//!   paper's channel offers no such feedback. We grant BEB the
//!   transmitter-side detection it classically assumes (a transmitter that
//!   does not hear its own message back knows it collided) — see the module
//!   tests and DESIGN.md; this makes BEB an *optimistic* baseline.

use mac_sim::{Action, Feedback, Protocol, Slot, Station, StationId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use selectors::math::log_n;

/// Repeated Probability Decrease with period `ℓ = 2⌈log n⌉`.
#[derive(Clone, Copy, Debug)]
pub struct Rpd {
    n: u32,
    period: u32,
}

impl Rpd {
    /// RPD for `n` stations (`ℓ = 2·max(1, ⌈log₂ n⌉)`).
    pub fn new(n: u32) -> Self {
        assert!(n >= 1);
        Rpd {
            n,
            period: 2 * log_n(u64::from(n)),
        }
    }

    /// The probability period `ℓ`.
    pub fn period(&self) -> u32 {
        self.period
    }
}

/// RPD with the period tuned by known `k`: `ℓ = 2⌈log k⌉`.
#[derive(Clone, Copy, Debug)]
pub struct RpdK {
    n: u32,
    k: u32,
    period: u32,
}

impl RpdK {
    /// RPD-k for `n` stations with contention bound `k`.
    pub fn new(n: u32, k: u32) -> Self {
        assert!(n >= 1);
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        RpdK {
            n,
            k,
            period: 2 * log_n(u64::from(k)),
        }
    }

    /// The probability period `ℓ`.
    pub fn period(&self) -> u32 {
        self.period
    }
}

struct RpdStation {
    rng: ChaCha8Rng,
    period: u32,
    sigma: Slot,
}

impl Station for RpdStation {
    fn wake(&mut self, sigma: Slot) {
        self.sigma = sigma;
    }

    fn act(&mut self, t: Slot) -> Action {
        let age = t - self.sigma;
        let exponent = 1 + (age % u64::from(self.period)) as u32;
        // Transmit with probability 2^{-exponent}.
        let draw: u64 = self.rng.gen();
        Action::from_bool(exponent < 64 && draw >> (64 - exponent) == 0)
    }
}

impl Protocol for Rpd {
    fn station(&self, _id: StationId, seed: u64) -> Box<dyn Station> {
        Box::new(RpdStation {
            rng: ChaCha8Rng::seed_from_u64(seed),
            period: self.period,
            sigma: 0,
        })
    }

    fn name(&self) -> String {
        format!("rpd(n={}, ℓ={})", self.n, self.period)
    }
}

impl Protocol for RpdK {
    fn station(&self, _id: StationId, seed: u64) -> Box<dyn Station> {
        Box::new(RpdStation {
            rng: ChaCha8Rng::seed_from_u64(seed),
            period: self.period,
            sigma: 0,
        })
    }

    fn name(&self) -> String {
        format!("rpd-k(n={}, k={}, ℓ={})", self.n, self.k, self.period)
    }
}

/// Slotted ALOHA: transmit with fixed probability `1/k` in every slot.
#[derive(Clone, Copy, Debug)]
pub struct Aloha {
    n: u32,
    k: u32,
}

impl Aloha {
    /// ALOHA with transmission probability `1/k`.
    pub fn new(n: u32, k: u32) -> Self {
        assert!(n >= 1);
        assert!((1..=n).contains(&k), "k={k} outside 1..={n}");
        Aloha { n, k }
    }
}

struct AlohaStation {
    rng: ChaCha8Rng,
    p: f64,
}

impl Station for AlohaStation {
    fn wake(&mut self, _sigma: Slot) {}
    fn act(&mut self, _t: Slot) -> Action {
        Action::from_bool(self.rng.gen_bool(self.p))
    }
}

impl Protocol for Aloha {
    fn station(&self, _id: StationId, seed: u64) -> Box<dyn Station> {
        Box::new(AlohaStation {
            rng: ChaCha8Rng::seed_from_u64(seed),
            p: 1.0 / f64::from(self.k),
        })
    }

    fn name(&self) -> String {
        format!("aloha(n={}, p=1/{})", self.n, self.k)
    }
}

/// Ethernet-style binary exponential backoff.
///
/// A station attempts a transmission; if its attempt slot passes without it
/// hearing its own message (collision), it doubles its contention window
/// (capped at `max_window`) and schedules a uniformly random retry inside
/// the new window.
#[derive(Clone, Copy, Debug)]
pub struct BinaryExponentialBackoff {
    n: u32,
    /// Cap on the contention window (default `1024`).
    pub max_window: u64,
}

impl BinaryExponentialBackoff {
    /// BEB over `n` stations with the default window cap.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1);
        BinaryExponentialBackoff {
            n,
            max_window: 1024,
        }
    }

    /// Override the maximum contention window.
    pub fn with_max_window(mut self, w: u64) -> Self {
        assert!(w >= 2);
        self.max_window = w;
        self
    }
}

struct BebStation {
    rng: ChaCha8Rng,
    window: u64,
    max_window: u64,
    next_attempt: Slot,
    attempted_at: Option<Slot>,
}

impl Station for BebStation {
    fn wake(&mut self, sigma: Slot) {
        // First attempt immediately on wake (classical behaviour).
        self.window = 2;
        self.next_attempt = sigma;
    }

    fn act(&mut self, t: Slot) -> Action {
        if t == self.next_attempt {
            self.attempted_at = Some(t);
            Action::Transmit
        } else {
            Action::Listen
        }
    }

    fn feedback(&mut self, t: Slot, fb: Feedback) {
        if self.attempted_at == Some(t) {
            // Our attempt slot: anything but hearing our own message back
            // means the attempt failed (transmitter-side collision
            // detection granted to this baseline).
            let failed = !matches!(fb, Feedback::Heard(_));
            if failed {
                self.window = (self.window * 2).min(self.max_window);
                self.next_attempt = t + 1 + self.rng.gen_range(0..self.window);
            }
            self.attempted_at = None;
        }
    }
}

impl Protocol for BinaryExponentialBackoff {
    fn station(&self, _id: StationId, seed: u64) -> Box<dyn Station> {
        Box::new(BebStation {
            rng: ChaCha8Rng::seed_from_u64(seed),
            window: 2,
            max_window: self.max_window,
            next_attempt: 0,
            attempted_at: None,
        })
    }

    fn name(&self) -> String {
        format!("beb(n={}, cap={})", self.n, self.max_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mac_sim::prelude::*;

    fn ids(v: &[u32]) -> Vec<StationId> {
        v.iter().copied().map(StationId).collect()
    }

    fn mean_latency(p: &dyn Protocol, n: u32, pattern: &WakePattern, runs: u64) -> f64 {
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(100_000));
        let mut total = 0.0;
        for seed in 0..runs {
            let out = sim.run(p, pattern, seed).unwrap();
            total += out.latency().expect("randomized protocol must solve") as f64;
        }
        total / runs as f64
    }

    #[test]
    fn rpd_period_formula() {
        assert_eq!(Rpd::new(1024).period(), 20);
        assert_eq!(Rpd::new(2).period(), 2);
        assert_eq!(RpdK::new(1024, 16).period(), 8);
    }

    #[test]
    fn rpd_solves_and_is_fast() {
        let n = 256u32;
        let pattern = WakePattern::simultaneous(&ids(&[4, 77, 130, 200]), 0).unwrap();
        let mean = mean_latency(&Rpd::new(n), n, &pattern, 30);
        // Expected O(log n): generous envelope of 40·log n.
        assert!(
            mean < 40.0 * f64::from(log_n(u64::from(n))),
            "RPD mean latency {mean}"
        );
    }

    #[test]
    fn rpd_k_beats_rpd_for_small_k() {
        // With k = 2 known, the period is much shorter, so the good
        // probability scale recurs sooner: expect a clear speedup.
        let n = 1 << 14;
        let pattern = WakePattern::simultaneous(&ids(&[100, 9000]), 0).unwrap();
        let rpd = mean_latency(&Rpd::new(n), n, &pattern, 60);
        let rpdk = mean_latency(&RpdK::new(n, 2), n, &pattern, 60);
        assert!(
            rpdk < rpd,
            "RPD-k ({rpdk:.1}) should beat RPD ({rpdk:.1} vs {rpd:.1}) at k=2, n=2^14"
        );
    }

    #[test]
    fn aloha_solves_at_design_contention() {
        let n = 64u32;
        let k = 8;
        let chosen: Vec<StationId> = (0..k).map(|i| StationId(i * 8)).collect();
        let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
        let mean = mean_latency(&Aloha::new(n, k), n, &pattern, 30);
        // With m = k contenders at p = 1/k, success probability per slot is
        // m·p·(1-p)^{m-1} ≈ e^{-1}, so the mean should be around e ≈ 2.7.
        assert!(mean < 15.0, "ALOHA mean latency {mean}");
    }

    #[test]
    fn beb_resolves_a_burst() {
        let n = 64u32;
        let chosen: Vec<StationId> = (0..8).map(StationId).collect();
        let pattern = WakePattern::simultaneous(&chosen, 0).unwrap();
        let mean = mean_latency(&BinaryExponentialBackoff::new(n), n, &pattern, 30);
        assert!(mean < 200.0, "BEB mean latency {mean}");
    }

    #[test]
    fn beb_single_station_wins_instantly() {
        let n = 16u32;
        let sim = Simulator::new(SimConfig::new(n));
        let pattern = WakePattern::simultaneous(&ids(&[7]), 42).unwrap();
        let out = sim
            .run(&BinaryExponentialBackoff::new(n), &pattern, 0)
            .unwrap();
        assert_eq!(out.latency(), Some(0));
    }

    #[test]
    fn rpd_latency_grows_with_log_n_shape() {
        // Mean latency at k=2 should grow no faster than ~log n.
        let pattern_small = WakePattern::simultaneous(&ids(&[1, 50]), 0).unwrap();
        let pattern_large = WakePattern::simultaneous(&ids(&[1, 50]), 0).unwrap();
        let small = mean_latency(&Rpd::new(64), 64, &pattern_small, 40);
        let large = mean_latency(&Rpd::new(4096), 4096, &pattern_large, 40);
        // n grew 64×; a log-shaped latency should grow ≤ ~4× (with slack).
        assert!(
            large < small * 8.0 + 20.0,
            "RPD scaling suspicious: {small:.1} → {large:.1}"
        );
    }

    #[test]
    fn randomized_runs_depend_on_run_seed() {
        let n = 64u32;
        let pattern = WakePattern::simultaneous(&ids(&[0, 1, 2, 3]), 0).unwrap();
        let sim = Simulator::new(SimConfig::new(n).with_max_slots(100_000));
        let a = sim.run(&Rpd::new(n), &pattern, 1).unwrap();
        let b = sim.run(&Rpd::new(n), &pattern, 1).unwrap();
        assert_eq!(a.first_success, b.first_success, "same seed must agree");
    }

    #[test]
    fn staggered_arrivals_are_handled() {
        let n = 128u32;
        let pattern = WakePattern::staggered(&ids(&[3, 30, 90]), 10, 17).unwrap();
        for p in [
            &Rpd::new(n) as &dyn Protocol,
            &RpdK::new(n, 4),
            &Aloha::new(n, 4),
            &BinaryExponentialBackoff::new(n),
        ] {
            let sim = Simulator::new(SimConfig::new(n).with_max_slots(100_000));
            let out = sim.run(p, &pattern, 3).unwrap();
            assert!(out.solved(), "{} failed", p.name());
        }
    }
}
