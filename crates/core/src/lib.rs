//! # wakeup-core — the De Marco–Kowalski contention-resolution algorithms
//!
//! This crate implements the primary contribution of De Marco & Kowalski,
//! *"Contention Resolution in a Non-Synchronized Multiple Access Channel"*
//! (IPDPS 2013): deterministic wake-up protocols for a multiple access
//! channel without collision detection, where up to `k` of `n` stations wake
//! up at adversarially chosen times, under three knowledge scenarios:
//!
//! | Scenario | Known to stations | Algorithm | Bound |
//! |----------|-------------------|-----------|-------|
//! | A | `n`, `s` (first wake-up slot) | [`WakeupWithS`] = round-robin ⊕ [`SelectAmongFirst`] | `Θ(k log(n/k) + 1)` |
//! | B | `n`, `k` | [`WakeupWithK`] = round-robin ⊕ [`WaitAndGo`] | `Θ(k log(n/k) + 1)` |
//! | C | `n` only | [`WakeupN`] over a [`WakingMatrix`] | `O(k log n log log n)` |
//!
//! (`⊕` is the odd/even slot interleaving of §3: with a global clock, run one
//! component on even slots and the other on odd slots.)
//!
//! Additional contents:
//!
//! * [`round_robin`] — the time-division baseline (optimal for `k > n/c`);
//! * [`waking_matrix`] — §5's combinatorial tool: the `(log n × ℓ)`
//!   transmission matrix with membership probability `2^{-(i+ρ(j))}`,
//!   realized as a seeded PRF oracle, plus the full §5.2 analysis machinery
//!   (windows, `S_{i,j}` partitions, well-balancedness S1/S2, isolation);
//! * [`randomized`] — §6: the Jurdziński–Stachowiak *Repeated Probability
//!   Decrease* protocol (`O(log n)` expected), its `k`-aware variant
//!   (`O(log k)`), and classical baselines (slotted ALOHA, binary
//!   exponential backoff);
//! * [`baselines`] — a locally-synchronized deterministic stand-in for the
//!   Chlebus–Gąsieniec–Kowalski–Radzik `O(k log² n)` comparison point;
//! * [`conflict_resolution`] — the Komlós–Greenberg predecessor problem
//!   (*every* awake station must transmit successfully), built from the
//!   same selective families with retirement on own success;
//! * [`lower_bound`] — Theorem 2.1's swap-chain adversary, executable
//!   against any oblivious schedule;
//! * [`scenario`] — a unified facade selecting the right algorithm per
//!   knowledge scenario.
//!
//! ```
//! use mac_sim::prelude::*;
//! use wakeup_core::prelude::*;
//!
//! // Scenario B: n = 64 stations, at most k = 4 wake up; staggered arrivals.
//! let n = 64;
//! let protocol = WakeupWithK::new(n, 4, FamilyProvider::default());
//! let ids: Vec<StationId> = [3u32, 17, 40, 63].map(StationId).into();
//! let pattern = WakePattern::staggered(&ids, 100, 7).unwrap();
//! let sim = Simulator::new(SimConfig::new(n));
//! let out = sim.run(&protocol, &pattern, 1).unwrap();
//! assert!(out.solved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cache;
pub mod certify;
pub mod conflict_resolution;
pub mod energy;
pub mod family_provider;
pub mod lower_bound;
pub mod randomized;
pub mod round_robin;
pub mod scenario;
pub mod select_among_first;
pub mod wait_and_go;
pub mod wakeup_n;
pub mod wakeup_with_k;
pub mod wakeup_with_s;
pub mod waking_matrix;

pub use cache::ConstructionCache;
pub use certify::{certify, search_certified_seed, Certificate, CertifyConfig};
pub use conflict_resolution::{FullResolution, RetiringRoundRobin};
pub use energy::EnergyCapped;
pub use family_provider::{DynFamily, FamilyProvider};
pub use round_robin::RoundRobin;
pub use scenario::{scenario_protocol, Scenario};
pub use select_among_first::{DoublingSchedule, PositionIndex, SelectAmongFirst};
pub use wait_and_go::WaitAndGo;
pub use wakeup_n::WakeupN;
pub use wakeup_with_k::WakeupWithK;
pub use wakeup_with_s::WakeupWithS;
pub use waking_matrix::{MatrixParams, WakingMatrix};

/// Convenient glob import.
pub mod prelude {
    pub use crate::baselines::LocalDoubling;
    pub use crate::cache::ConstructionCache;
    pub use crate::certify::{certify, search_certified_seed, Certificate, CertifyConfig};
    pub use crate::conflict_resolution::{FullResolution, RetiringRoundRobin};
    pub use crate::energy::EnergyCapped;
    pub use crate::family_provider::{DynFamily, FamilyProvider};
    pub use crate::lower_bound::SwapChainAdversary;
    pub use crate::randomized::{Aloha, BinaryExponentialBackoff, Rpd, RpdK};
    pub use crate::round_robin::RoundRobin;
    pub use crate::scenario::{scenario_protocol, Scenario};
    pub use crate::select_among_first::SelectAmongFirst;
    pub use crate::wait_and_go::WaitAndGo;
    pub use crate::wakeup_n::WakeupN;
    pub use crate::wakeup_with_k::WakeupWithK;
    pub use crate::wakeup_with_s::WakeupWithS;
    pub use crate::waking_matrix::{MatrixParams, WakingMatrix};
}
