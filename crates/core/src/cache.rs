//! Ensemble-wide construction cache: selective families, doubling
//! schedules and waking matrices built **once per `(n, k, provider)` per
//! ensemble** and shared read-only across runs.
//!
//! Every run of an ensemble used to rebuild its protocol's combinatorial
//! structure from scratch — the `(n, 2^i)`-selective family sequence, the
//! [`DoublingSchedule`] over it, the [`WakingMatrix`] — even though these
//! are pure functions of the seed and therefore identical across the
//! thousands of runs at the same parameters. [`ConstructionCache`] memoizes
//! them behind [`Arc`]s:
//!
//! * handles are **shared across work-stealing workers** (the cache is
//!   `Sync`; one short mutex hold per lookup, construction itself happens
//!   outside any lock for the common hit path);
//! * sharing one [`Arc<DoublingSchedule>`] across runs additionally shares
//!   the schedule's interior per-station
//!   [`PositionIndex`](crate::PositionIndex) memo
//!   ([`DoublingSchedule::shared_index`]), so the `O(period)` index scan
//!   happens once per *ensemble* instead of once per *run*;
//! * per-run mutable state stays station-local (the existing
//!   `NextPositionCache`, row-scan cursors, retirement flags) — the cache
//!   holds only immutable structure, so outcomes are bit-identical with and
//!   without it.
//!
//! The maps are **bounded**: ensembles that derive a fresh provider seed
//! per run (sampling over constructions) would otherwise grow one entry
//! per run. When a map reaches [`CACHE_CAP`] entries it is cleared — a
//! fixed-provider ensemble never gets near the cap, while a per-run-seed
//! ensemble just keeps missing cheaply.
//!
//! The protocols consume the cache through their `cached` constructors
//! ([`WakeupWithK::cached`](crate::WakeupWithK::cached), …); the ensemble
//! layer threads it through
//! [`run_ensemble_cached`](../../wakeup_analysis/ensemble/fn.run_ensemble_cached.html)-style
//! entry points.

use crate::family_provider::{DynFamily, FamilyProvider};
use crate::select_among_first::DoublingSchedule;
use crate::waking_matrix::{MatrixParams, WakingMatrix};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Upper bound on entries per interior map; reaching it clears that map
/// (see the module docs on per-run-seed ensembles).
pub const CACHE_CAP: usize = 128;

/// Orderable identity of a [`FamilyProvider`] (the `δ` float is keyed by
/// its bit pattern — identical parameters, identical constructions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum ProviderKey {
    Random { seed: u64, delta_bits: u64 },
    KautzSingleton,
}

impl ProviderKey {
    fn of(p: &FamilyProvider) -> Self {
        match *p {
            FamilyProvider::Random { seed, delta } => ProviderKey::Random {
                seed,
                delta_bits: delta.to_bits(),
            },
            FamilyProvider::KautzSingleton => ProviderKey::KautzSingleton,
        }
    }
}

/// The interior maps are `BTreeMap`s, not `HashMap`s: the cache sits in the
/// deterministic tier, and ordered maps make even diagnostic iteration
/// order reproducible (lookups stay `O(log CACHE_CAP)` on tiny maps).
#[derive(Debug, Default)]
struct Maps {
    /// `(provider, n, k)` → realized selective family (cheap handle).
    families: BTreeMap<(ProviderKey, u32, u32), DynFamily>,
    /// `(provider, n, top)` → shared doubling schedule.
    schedules: BTreeMap<(ProviderKey, u32, u32), Arc<DoublingSchedule>>,
    /// Matrix parameters → shared waking matrix.
    matrices: BTreeMap<MatrixParams, Arc<WakingMatrix>>,
}

/// Insert under the cap, **adopting a racing builder's entry** when one
/// landed between the miss and this insert: both built the same
/// deterministic value, but only the map winner's handle is the one every
/// later run shares (and whose interior memos amortize) — so the loser
/// returns the winner's clone instead of a private duplicate.
fn bounded_insert<K: Ord, V: Clone>(map: &mut BTreeMap<K, V>, key: K, value: V) -> V {
    if map.len() >= CACHE_CAP && !map.contains_key(&key) {
        map.clear();
    }
    map.entry(key).or_insert(value).clone()
}

/// A cheaply-cloneable (`Arc`-backed), thread-safe construction cache. See
/// the module docs.
#[derive(Clone, Debug, Default)]
pub struct ConstructionCache {
    inner: Arc<Mutex<Maps>>,
}

impl ConstructionCache {
    /// An empty cache.
    pub fn new() -> Self {
        ConstructionCache::default()
    }

    /// The `(n, k)`-selective family realized by `provider`, built on first
    /// use. [`DynFamily`] handles are a few machine words, so hits clone.
    pub fn family(&self, provider: &FamilyProvider, n: u32, k: u32) -> DynFamily {
        let key = (ProviderKey::of(provider), n, k);
        if let Some(f) = self.inner.lock().unwrap().families.get(&key) {
            return f.clone();
        }
        let built = provider.family(n, k);
        bounded_insert(&mut self.inner.lock().unwrap().families, key, built)
    }

    /// The doubling-family sequence `F₁ … F_top`, each family pulled
    /// through [`family`](Self::family) — so a larger `top` reuses every
    /// family a smaller one already built (the sequences nest).
    pub fn doubling_sequence(&self, provider: &FamilyProvider, n: u32, top: u32) -> Vec<DynFamily> {
        if top == 0 {
            return vec![self.family(provider, n, 1)];
        }
        (1..=top)
            .map(|i| self.family(provider, n, (1u32 << i.min(31)).min(n)))
            .collect()
    }

    /// The shared [`DoublingSchedule`] `⟨F₁ … F_top⟩` for `provider`. All
    /// runs holding the same handle also share its interior per-station
    /// [`PositionIndex`](crate::PositionIndex) memo.
    pub fn schedule(&self, provider: &FamilyProvider, n: u32, top: u32) -> Arc<DoublingSchedule> {
        let key = (ProviderKey::of(provider), n, top);
        if let Some(s) = self.inner.lock().unwrap().schedules.get(&key) {
            return Arc::clone(s);
        }
        let built = Arc::new(DoublingSchedule::from_families(
            self.doubling_sequence(provider, n, top),
        ));
        bounded_insert(&mut self.inner.lock().unwrap().schedules, key, built)
    }

    /// The shared [`WakingMatrix`] for `params`.
    pub fn matrix(&self, params: MatrixParams) -> Arc<WakingMatrix> {
        if let Some(m) = self.inner.lock().unwrap().matrices.get(&params) {
            return Arc::clone(m);
        }
        let built = Arc::new(WakingMatrix::new(params));
        bounded_insert(&mut self.inner.lock().unwrap().matrices, params, built)
    }

    /// Number of cached entries across all maps (diagnostics and tests).
    pub fn len(&self) -> usize {
        let m = self.inner.lock().unwrap();
        m.families.len() + m.schedules.len() + m.matrices.len()
    }

    /// `true` iff nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_handles_are_shared() {
        let cache = ConstructionCache::new();
        let p = FamilyProvider::random_with_seed(7);
        let a = cache.schedule(&p, 64, 3);
        let b = cache.schedule(&p, 64, 3);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one schedule");
        let c = cache.schedule(&p, 64, 2);
        assert!(!Arc::ptr_eq(&a, &c), "different top is a different handle");
    }

    #[test]
    fn cached_schedule_matches_direct_construction() {
        let cache = ConstructionCache::new();
        for provider in [
            FamilyProvider::random_with_seed(5),
            FamilyProvider::KautzSingleton,
        ] {
            let direct = DoublingSchedule::new(&provider, 48, 3);
            let cached = cache.schedule(&provider, 48, 3);
            assert_eq!(direct.period(), cached.period());
            for u in 0..48u32 {
                for p in 0..direct.period() {
                    assert_eq!(
                        direct.transmits(u, p),
                        cached.transmits(u, p),
                        "u={u} p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn nested_sequences_reuse_families() {
        let cache = ConstructionCache::new();
        let p = FamilyProvider::random_with_seed(1);
        cache.doubling_sequence(&p, 64, 2);
        let before = cache.len();
        // top = 4 adds exactly the two new families (F₃, F₄).
        cache.doubling_sequence(&p, 64, 4);
        assert_eq!(cache.len(), before + 2);
    }

    #[test]
    fn distinct_providers_do_not_collide() {
        let cache = ConstructionCache::new();
        let a = cache.family(&FamilyProvider::random_with_seed(1), 32, 4);
        let b = cache.family(&FamilyProvider::random_with_seed(2), 32, 4);
        let differs = (0..32u32).any(|u| a.member(u, 0) != b.member(u, 0));
        assert!(differs, "providers with different seeds must differ");
        // δ is part of the key, down to the bit pattern.
        let c = cache.family(
            &FamilyProvider::Random {
                seed: 1,
                delta: 1e-4,
            },
            32,
            4,
        );
        assert_ne!(a.len(), c.len(), "different δ sizes the family differently");
    }

    #[test]
    fn matrix_handles_are_shared_and_bounded() {
        let cache = ConstructionCache::new();
        let a = cache.matrix(MatrixParams::new(64));
        let b = cache.matrix(MatrixParams::new(64));
        assert!(Arc::ptr_eq(&a, &b));
        // Per-run-seed churn stays bounded by the cap.
        for seed in 0..3 * CACHE_CAP as u64 {
            cache.matrix(MatrixParams::new(16).with_seed(seed));
        }
        assert!(cache.len() <= 2 * CACHE_CAP);
    }
}
