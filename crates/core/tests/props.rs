//! Property-based tests of the paper's combinatorial objects and protocols.

use proptest::prelude::*;
use wakeup_core::prelude::*;
use wakeup_core::select_among_first::DoublingSchedule;

proptest! {
    // ------------------------------------------------------------------
    // Waking matrix structure.
    // ------------------------------------------------------------------
    #[test]
    fn mu_is_idempotent_window_aligned_and_minimal(n in 1u32..2000, sigma in 0u64..100_000) {
        let m = WakingMatrix::new(MatrixParams::new(n));
        let w = u64::from(m.window());
        let mu = m.mu(sigma);
        prop_assert!(mu >= sigma);
        prop_assert!(mu - sigma < w);
        prop_assert_eq!(mu % w, 0);
        prop_assert_eq!(m.mu(mu), mu);
    }

    #[test]
    fn row_at_offset_partitions_the_scan(n in 2u32..500, probe in 0u64..50_000) {
        let m = WakingMatrix::new(MatrixParams::new(n));
        let delta = probe % (m.total_scan() + 100);
        match m.row_at_offset(delta) {
            Some(row) => {
                prop_assert!((1..=m.rows()).contains(&row));
                // delta lies inside row's dwell interval.
                let before: u64 = (1..row).map(|i| m.dwell(i)).sum();
                prop_assert!(delta >= before);
                prop_assert!(delta < before + m.dwell(row));
            }
            None => prop_assert!(delta >= m.total_scan()),
        }
    }

    #[test]
    fn rho_commutes_with_circular_scan(n in 2u32..500, t in 0u64..1_000_000) {
        let m = WakingMatrix::new(MatrixParams::new(n));
        // ℓ is a multiple of the window, so ρ(t mod ℓ) = ρ(t).
        prop_assert_eq!(m.rho(t % m.ell()), m.rho(t));
    }

    #[test]
    fn member_is_deterministic_and_circular(
        n in 2u32..300,
        i in 1u32..8,
        j in 0u64..1_000_000,
        u in 0u32..300,
    ) {
        let m = WakingMatrix::new(MatrixParams::new(n).with_seed(7));
        let i = 1 + (i - 1) % m.rows();
        prop_assert_eq!(m.member(i, j, u), m.member(i, j, u));
        prop_assert_eq!(m.member(i, j, u), m.member(i, j + m.ell(), u));
        if u >= n {
            prop_assert!(!m.member(i, j, u));
        }
    }

    #[test]
    fn stateful_station_equals_stateless_predicate(
        n in 4u32..200,
        sigma in 0u64..500,
        span in 1u64..800,
        u in 0u32..200,
        seed in 0u64..50,
    ) {
        prop_assume!(u < n);
        let proto = WakeupN::new(MatrixParams::new(n).with_seed(seed));
        let matrix = std::sync::Arc::clone(proto.matrix());
        let mut st = mac_sim::Protocol::station(&proto, mac_sim::StationId(u), 0);
        st.wake(sigma);
        for t in sigma..sigma + span {
            let expected = matrix.transmits(u, sigma, t);
            prop_assert_eq!(st.act(t).is_transmit(), expected, "divergence at t={}", t);
        }
    }

    // ------------------------------------------------------------------
    // Doubling schedule (Scenario A/B backbone).
    // ------------------------------------------------------------------
    #[test]
    fn next_boundary_is_minimal_boundary(n in 4u32..100, top in 1u32..5, p in 0u64..5_000) {
        let sched = DoublingSchedule::new(&FamilyProvider::random_with_seed(3), n, top);
        let b = sched.next_boundary(p);
        prop_assert!(b >= p);
        prop_assert!(sched.offsets().contains(&(b % sched.period())));
        // Minimality: no boundary position strictly between p and b.
        for q in p..b {
            prop_assert!(!sched.offsets().contains(&(q % sched.period())));
        }
        // Within one period of p.
        prop_assert!(b - p <= sched.period());
    }

    #[test]
    fn doubling_schedule_positions_map_to_member_queries(
        n in 4u32..80,
        top in 1u32..4,
        p in 0u64..3_000,
        u in 0u32..80,
    ) {
        prop_assume!(u < n);
        let provider = FamilyProvider::random_with_seed(9);
        let sched = DoublingSchedule::new(&provider, n, top);
        let p_mod = p % sched.period();
        // Locate the family containing p and compare.
        let offsets = sched.offsets();
        let idx = offsets.iter().rposition(|&o| o <= p_mod).unwrap();
        let fam = &sched.families()[idx];
        prop_assert_eq!(
            sched.transmits(u, p),
            fam.member(u, p_mod - offsets[idx])
        );
    }

    // ------------------------------------------------------------------
    // Protocol-level invariants on random instances.
    // ------------------------------------------------------------------
    #[test]
    fn interleaved_components_never_share_a_slot(
        k in 2u32..8,
        seed in 0u64..50,
    ) {
        // In wakeup_with_k, even slots are round-robin (≤1 transmitter).
        let n = 64u32;
        let ids: Vec<mac_sim::StationId> =
            (0..k).map(|i| mac_sim::StationId(i * (n / k))).collect();
        let pattern = mac_sim::WakePattern::simultaneous(&ids, seed % 17).unwrap();
        let cfg = mac_sim::SimConfig::new(n).with_transcript();
        let out = mac_sim::Simulator::new(cfg)
            .run(
                &WakeupWithK::new(n, k, FamilyProvider::random_with_seed(seed)),
                &pattern,
                seed,
            )
            .unwrap();
        let tr = out.transcript.unwrap();
        for r in tr.records() {
            if r.slot % 2 == 0 {
                prop_assert!(r.transmitters.len() <= 1, "RR collision at {}", r.slot);
            }
        }
    }

    #[test]
    fn swap_chain_certificates_are_valid(n in 6u32..40, k in 2u32..8) {
        prop_assume!(k < n);
        use selectors::schedule::RoundRobinSchedule;
        let adv = SwapChainAdversary::new(n, k);
        let res = adv.run(&RoundRobinSchedule::new(n));
        prop_assert!(!res.found_unisolated_set);
        prop_assert!(res.forced_rounds >= adv.bound());
        // Chain steps are genuine k-sets and each recorded isolation round
        // really isolates its set.
        let sched = RoundRobinSchedule::new(n);
        for step in &res.chain {
            prop_assert_eq!(step.x.len(), k as usize);
            if let (Some(r), Some(w)) = (step.isolation_round, step.isolated) {
                let hits: Vec<u32> = step
                    .x
                    .iter()
                    .copied()
                    .filter(|&u| selectors::schedule::Schedule::transmits(&sched, u, r))
                    .collect();
                prop_assert_eq!(hits, vec![w]);
            }
        }
    }

    #[test]
    fn rpd_probability_exponent_cycles(n in 2u32..10_000) {
        let p = Rpd::new(n);
        let ell = p.period();
        prop_assert_eq!(ell, 2 * selectors::math::log_n(u64::from(n)));
        prop_assert!(ell >= 2);
    }
}
