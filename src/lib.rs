//! # mac-wakeup — contention resolution on a non-synchronized multiple access channel
//!
//! A full Rust reproduction of De Marco & Kowalski, *"Contention Resolution
//! in a Non-Synchronized Multiple Access Channel"* (IEEE IPDPS 2013): the
//! channel model, the combinatorial machinery (selective families, waking
//! matrices), the three deterministic wake-up algorithms, the §6 randomized
//! protocols, the Theorem 2.1 lower-bound adversary, and the measurement
//! harness that regenerates every quantitative claim of the paper.
//!
//! This crate is a facade: it re-exports the five member crates.
//!
//! | crate | contents |
//! |-------|----------|
//! | [`mac_sim`] | slot-synchronous channel simulator, wake patterns, adversaries |
//! | [`selectors`] | selective families, Kautz–Singleton codes, schedule algebra |
//! | [`wakeup_core`] | the paper's algorithms and the waking matrix |
//! | [`wakeup_analysis`] | ensembles, statistics, model-shape fitting, tables |
//! | [`wakeup_runner`] | work-stealing ensemble execution, streaming accumulators |
//!
//! ## Quickstart
//!
//! ```
//! use mac_wakeup::prelude::*;
//!
//! // 64 stations; nobody knows when others wake or how many will (Scenario C).
//! let n = 64;
//! let protocol = WakeupN::new(MatrixParams::new(n));
//!
//! // Adversary wakes three stations at staggered times.
//! let ids: Vec<StationId> = [5u32, 23, 47].map(StationId).into();
//! let pattern = WakePattern::staggered(&ids, 100, 9).unwrap();
//!
//! let outcome = Simulator::new(SimConfig::new(n))
//!     .run(&protocol, &pattern, 0)
//!     .unwrap();
//! assert!(outcome.solved());
//! println!(
//!     "station {} transmitted alone {} slots after the first wake-up",
//!     outcome.winner.unwrap(),
//!     outcome.latency().unwrap()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mac_sim;
pub use selectors;
pub use wakeup_analysis;
pub use wakeup_core;
pub use wakeup_runner;

/// One-stop imports: the simulator, the paper's protocols and the analysis
/// tools.
pub mod prelude {
    pub use mac_sim::prelude::*;
    pub use selectors::prelude::*;
    pub use wakeup_analysis::prelude::*;
    pub use wakeup_core::prelude::*;
}
