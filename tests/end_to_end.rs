//! Cross-crate integration: every algorithm of the paper, on every wake-up
//! pattern family, solves the wake-up problem with a valid channel
//! transcript and within its guaranteed envelope.

use mac_wakeup::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const N: u32 = 128;

fn protocols(n: u32, k: u32, s: u64) -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(RoundRobin::new(n)),
        Box::new(WakeupWithS::new(n, s, FamilyProvider::default())),
        Box::new(WakeupWithK::new(n, k, FamilyProvider::default())),
        Box::new(WakeupN::new(MatrixParams::new(n))),
        Box::new(Rpd::new(n)),
        Box::new(RpdK::new(n, k)),
        Box::new(Aloha::new(n, k)),
        Box::new(BinaryExponentialBackoff::new(n)),
        Box::new(LocalDoubling::new(n)),
    ]
}

fn patterns(n: u32, k: usize, s: u64, seed: u64) -> Vec<(&'static str, WakePattern)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ids = mac_sim::pattern::IdChoice::Random.pick(n, k, &mut rng);
    vec![
        ("simultaneous", WakePattern::simultaneous(&ids, s).unwrap()),
        ("staggered", WakePattern::staggered(&ids, s, 7).unwrap()),
        (
            "uniform-window",
            WakePattern::uniform_window(&ids, s, 64, &mut rng).unwrap(),
        ),
        (
            "batches",
            WakePattern::batches(&ids, s, 31, &[k / 2, k - k / 2]).unwrap(),
        ),
        (
            "trickle",
            WakePattern::trickle(&ids, s, 0.2, &mut rng).unwrap(),
        ),
    ]
}

#[test]
fn every_protocol_solves_every_pattern_family() {
    let (k, s) = (6u32, 40u64);
    let sim = Simulator::new(SimConfig::new(N).with_max_slots(300_000));
    for seed in 0..3u64 {
        for (pname, pattern) in patterns(N, k as usize, s, seed) {
            for protocol in protocols(N, k, s) {
                let out = sim.run(protocol.as_ref(), &pattern, seed).unwrap();
                assert!(
                    out.solved(),
                    "{} failed on {pname} (seed {seed})",
                    protocol.name()
                );
                // Latency is measured from the pattern's s.
                assert_eq!(out.s, pattern.s());
                assert!(out.first_success.unwrap() >= out.s);
                // The winner is one of the woken stations.
                let winner = out.winner.unwrap();
                assert!(
                    pattern.wake_of(winner).is_some(),
                    "winner {winner} never woke"
                );
                // ... and had already woken by the success slot.
                assert!(pattern.wake_of(winner).unwrap() <= out.first_success.unwrap());
            }
        }
    }
}

#[test]
fn transcripts_satisfy_channel_invariants_for_all_protocols() {
    let (k, s) = (5u32, 13u64);
    let cfg = SimConfig::new(N).with_max_slots(300_000).with_transcript();
    let sim = Simulator::new(cfg);
    for (pname, pattern) in patterns(N, k as usize, s, 1) {
        for protocol in protocols(N, k, s) {
            let out = sim.run(protocol.as_ref(), &pattern, 1).unwrap();
            let tr = out.transcript.expect("transcript requested");
            let violations = tr.check_invariants();
            assert!(
                violations.is_empty(),
                "{} on {pname}: {violations:?}",
                protocol.name()
            );
            // The success slot record matches the outcome.
            if let Some(rec) = tr.success() {
                assert_eq!(Some(rec.slot), out.first_success);
                assert_eq!(rec.transmitters.len(), 1);
                assert_eq!(Some(rec.transmitters[0]), out.winner);
            }
        }
    }
}

#[test]
fn deterministic_algorithms_respect_their_envelopes() {
    // Round-robin ≤ n; interleaved algorithms ≤ 2n; wakeup(n) ≤ Theorem 5.3
    // horizon (for bursts).
    let sim = Simulator::new(SimConfig::new(N).with_max_slots(300_000));
    let matrix = WakingMatrix::new(MatrixParams::new(N));
    for k in [1u32, 2, 4, 8, 16] {
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let ids = mac_sim::pattern::IdChoice::Random.pick(N, k as usize, &mut rng);
            let s = u64::from(k) * 11;
            let burst = WakePattern::simultaneous(&ids, s).unwrap();

            let rr = sim.run(&RoundRobin::new(N), &burst, seed).unwrap();
            assert!(rr.latency().unwrap() < u64::from(N));

            let a = sim
                .run(
                    &WakeupWithS::new(N, s, FamilyProvider::default()),
                    &burst,
                    seed,
                )
                .unwrap();
            assert!(a.latency().unwrap() <= 2 * u64::from(N));

            let b = sim
                .run(
                    &WakeupWithK::new(N, k, FamilyProvider::default()),
                    &burst,
                    seed,
                )
                .unwrap();
            assert!(b.latency().unwrap() <= 2 * u64::from(N));

            let c = sim
                .run(&WakeupN::new(MatrixParams::new(N)), &burst, seed)
                .unwrap();
            let horizon = 2
                * u64::from(matrix.c())
                * u64::from(k)
                * u64::from(matrix.rows())
                * u64::from(matrix.window());
            assert!(
                c.latency().unwrap() <= horizon,
                "wakeup(n) exceeded Theorem 5.3 horizon: {} > {horizon}",
                c.latency().unwrap()
            );
        }
    }
}

#[test]
fn scenario_facade_matches_direct_construction() {
    let s = 100u64;
    let k = 4u32;
    let ids: Vec<StationId> = [9u32, 40, 77, 120].map(StationId).into();
    let pattern = WakePattern::simultaneous(&ids, s).unwrap();
    let sim = Simulator::new(SimConfig::new(N));

    let via_facade = sim
        .run(&scenario_protocol(Scenario::B { k }, N, 5), &pattern, 2)
        .unwrap();
    let direct = sim
        .run(
            &WakeupWithK::new(N, k, FamilyProvider::random_with_seed(5)),
            &pattern,
            2,
        )
        .unwrap();
    assert_eq!(via_facade.first_success, direct.first_success);
    assert_eq!(via_facade.winner, direct.winner);
}

#[test]
fn single_station_instances_resolve_quickly_everywhere() {
    let sim = Simulator::new(SimConfig::new(N).with_max_slots(300_000));
    for id in [0u32, 63, 127] {
        for s in [0u64, 999] {
            let pattern = WakePattern::simultaneous(&[StationId(id)], s).unwrap();
            for protocol in protocols(N, 1, s) {
                let out = sim.run(protocol.as_ref(), &pattern, 3).unwrap();
                assert!(out.solved(), "{} failed k=1", protocol.name());
                assert_eq!(out.winner, Some(StationId(id)));
            }
        }
    }
}
