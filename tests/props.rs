//! Property-based end-to-end tests (proptest): randomized instances of the
//! whole stack must uphold the model's invariants.

use mac_wakeup::prelude::*;
use proptest::collection::btree_set;
use proptest::prelude::*;

const N: u32 = 64;

/// Strategy: a valid wake pattern over `N` stations with 1..=8 stations and
/// wake times in [0, 200).
fn wake_pattern() -> impl Strategy<Value = WakePattern> {
    btree_set(0..N, 1..=8usize).prop_flat_map(|ids| {
        let ids: Vec<u32> = ids.into_iter().collect();
        let len = ids.len();
        (Just(ids), proptest::collection::vec(0u64..200, len)).prop_map(|(ids, times)| {
            let wakes: Vec<(StationId, u64)> = ids.into_iter().map(StationId).zip(times).collect();
            WakePattern::new(wakes).expect("distinct ids")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wakeup_n_always_solves_with_valid_transcript(
        pattern in wake_pattern(),
        matrix_seed in 0u64..1000,
        run_seed in 0u64..1000,
    ) {
        let cfg = SimConfig::new(N).with_transcript();
        let sim = Simulator::new(cfg);
        let protocol = WakeupN::new(MatrixParams::new(N).with_seed(matrix_seed));
        let out = sim.run(&protocol, &pattern, run_seed).unwrap();
        prop_assert!(out.solved(), "unsolved for pattern {:?}", pattern.wakes());
        let tr = out.transcript.unwrap();
        prop_assert!(tr.check_invariants().is_empty());
        // Winner woke before winning.
        let winner = out.winner.unwrap();
        prop_assert!(pattern.wake_of(winner).unwrap() <= out.first_success.unwrap());
    }

    #[test]
    fn wakeup_with_k_honours_any_true_promise(
        pattern in wake_pattern(),
        seed in 0u64..500,
    ) {
        // Build the protocol with the exact k of the pattern (a true promise).
        let k = pattern.k() as u32;
        let sim = Simulator::new(SimConfig::new(N));
        let protocol = WakeupWithK::new(N, k, FamilyProvider::random_with_seed(seed));
        let out = sim.run(&protocol, &pattern, seed).unwrap();
        prop_assert!(out.solved());
        // The interleaved round-robin envelope.
        prop_assert!(out.latency().unwrap() <= 2 * u64::from(N));
    }

    #[test]
    fn wakeup_with_s_solves_when_s_is_truthful(
        pattern in wake_pattern(),
        seed in 0u64..500,
    ) {
        let s = pattern.s();
        let sim = Simulator::new(SimConfig::new(N));
        let protocol = WakeupWithS::new(N, s, FamilyProvider::random_with_seed(seed));
        let out = sim.run(&protocol, &pattern, seed).unwrap();
        prop_assert!(out.solved());
        prop_assert!(out.latency().unwrap() <= 2 * u64::from(N));
    }

    #[test]
    fn round_robin_latency_below_n_and_collision_free(
        pattern in wake_pattern(),
    ) {
        let cfg = SimConfig::new(N).with_transcript();
        let out = Simulator::new(cfg)
            .run(&RoundRobin::new(N), &pattern, 0)
            .unwrap();
        prop_assert!(out.solved());
        prop_assert!(out.latency().unwrap() < u64::from(N));
        prop_assert_eq!(out.collisions, 0);
    }

    #[test]
    fn outcome_accounting_is_consistent(
        pattern in wake_pattern(),
        seed in 0u64..200,
    ) {
        let cfg = SimConfig::new(N).with_transcript();
        let out = Simulator::new(cfg)
            .run(&Rpd::new(N), &pattern, seed)
            .unwrap();
        // slots = collisions + silence + successes
        let successes = u64::from(out.first_success.is_some());
        prop_assert_eq!(
            out.slots_simulated,
            out.collisions + out.silent_slots + successes
        );
        // Per-station transmissions sum to the total.
        let sum: u64 = out.per_station_tx.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum, out.transmissions);
        // Transcript totals agree with counters.
        let tr = out.transcript.unwrap();
        prop_assert_eq!(tr.count_by_contention(0) as u64, out.silent_slots);
        let collision_slots = tr
            .records()
            .iter()
            .filter(|r| r.transmitters.len() >= 2)
            .count() as u64;
        prop_assert_eq!(collision_slots, out.collisions);
    }

    #[test]
    fn latency_is_invariant_under_time_translation_for_global_protocols(
        ids in btree_set(0..N, 2..=5usize),
        shift in prop::sample::select(vec![0u64, 64, 128]),
        seed in 0u64..100,
    ) {
        // Shifting a burst by a multiple of every relevant period (round
        // robin: 2n; matrix: ℓ and window) must not change the latency of
        // the deterministic global-clock protocols.
        let ids: Vec<StationId> = ids.into_iter().map(StationId).collect();
        let matrix = WakingMatrix::new(MatrixParams::new(N).with_seed(seed));
        // A shift that is a common multiple of 2n, window and ℓ:
        let period = lcm(2 * u64::from(N), lcm(u64::from(matrix.window()), matrix.ell()));
        let sim = Simulator::new(SimConfig::new(N));
        let p1 = WakePattern::simultaneous(&ids, shift).unwrap();
        let p2 = WakePattern::simultaneous(&ids, shift + period).unwrap();
        let proto = WakeupN::new(MatrixParams::new(N).with_seed(seed));
        let a = sim.run(&proto, &p1, 0).unwrap();
        let b = sim.run(&proto, &p2, 0).unwrap();
        prop_assert_eq!(a.latency(), b.latency());
        prop_assert_eq!(a.winner, b.winner);
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}
