//! The sparse slot-skipping engine must be **observationally identical** to
//! dense per-slot polling: same `Outcome` (winner, latency, transmission /
//! collision / silence accounting, per-station counts, resolution order)
//! and same transcript, across protocols × wake patterns × seeds × stop
//! rules × feedback models. Only the work counters (`polls`,
//! `skipped_slots`) may differ between the two paths.
//!
//! With epoch-scoped hints this covers the feedback-reactive protocols too:
//! `StopRule::AllResolved` runs (retirement on own success) execute sparse
//! via `Until::NextSuccess` hints and must still match dense bit for bit.
//!
//! The **adaptive hybrid policy** of `EngineMode::Auto` (dense stepping on
//! burst-shaped stretches, wake-time batch detection, success re-probes) is
//! covered by the same properties: every sparse↔dense transition the policy
//! makes mid-run must leave the transcript bit-identical, and the work
//! counters must account for every slot —
//! `skipped_slots + dense_steps + word_slots ≤ slots_simulated ≤
//! skipped_slots + dense_steps + word_slots + polls` (each remaining slot
//! is a sparse event, which polls at least one station). Protocol constructions pulled
//! from a shared `ConstructionCache` are part of the zoo, so handle sharing
//! across runs is pinned against dense too.

use mac_sim::engine::StopRule;
use mac_wakeup::prelude::*;
use proptest::collection::btree_set;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Run `protocol` on both engine paths and assert identical observables.
fn assert_equivalent(
    n: u32,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    run_seed: u64,
    max_slots: Option<u64>,
) {
    assert_equivalent_under(
        n,
        protocol,
        pattern,
        run_seed,
        max_slots,
        StopRule::FirstSuccess,
        FeedbackModel::NoCollisionDetection,
    );
}

/// [`assert_equivalent`] under an explicit stop rule and feedback model.
#[allow(clippy::too_many_arguments)]
fn assert_equivalent_under(
    n: u32,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    run_seed: u64,
    max_slots: Option<u64>,
    stop: StopRule,
    feedback: FeedbackModel,
) {
    let mut cfg = SimConfig::new(n).with_transcript().with_feedback(feedback);
    if stop == StopRule::AllResolved {
        cfg = cfg.until_all_resolved();
    }
    if let Some(cap) = max_slots {
        cfg = cfg.with_max_slots(cap);
    }
    let auto = Simulator::new(cfg.clone())
        .run(protocol, pattern, run_seed)
        .unwrap();
    let dense = Simulator::new(cfg.with_engine(EngineMode::Dense))
        .run(protocol, pattern, run_seed)
        .unwrap();

    let ctx = format!(
        "protocol={} pattern={:?} seed={run_seed} cap={max_slots:?} stop={stop:?} fb={feedback:?}",
        protocol.name(),
        pattern.wakes()
    );
    assert_eq!(auto.s, dense.s, "s: {ctx}");
    assert_eq!(
        auto.first_success, dense.first_success,
        "first_success: {ctx}"
    );
    assert_eq!(auto.winner, dense.winner, "winner: {ctx}");
    assert_eq!(auto.latency(), dense.latency(), "latency: {ctx}");
    assert_eq!(
        auto.slots_simulated, dense.slots_simulated,
        "slots_simulated: {ctx}"
    );
    assert_eq!(
        auto.transmissions, dense.transmissions,
        "transmissions: {ctx}"
    );
    assert_eq!(
        auto.per_station_tx, dense.per_station_tx,
        "per_station_tx: {ctx}"
    );
    assert_eq!(auto.collisions, dense.collisions, "collisions: {ctx}");
    assert_eq!(auto.silent_slots, dense.silent_slots, "silent_slots: {ctx}");
    assert_eq!(auto.resolved, dense.resolved, "resolved: {ctx}");
    assert_eq!(
        auto.all_resolved_at, dense.all_resolved_at,
        "all_resolved_at: {ctx}"
    );
    assert_eq!(auto.transcript, dense.transcript, "transcript: {ctx}");
    // The dense reference path never skips and never polls less than auto.
    assert_eq!(dense.skipped_slots, 0, "dense skipped: {ctx}");
    assert!(
        auto.polls <= dense.polls,
        "auto polls {} > dense polls {}: {ctx}",
        auto.polls,
        dense.polls
    );
    // Slot accounting under the hybrid policy: every simulated slot is
    // either skipped in bulk, dense-stepped, word-kernel-resolved, or a
    // sparse event (≥ 1 poll).
    assert!(
        auto.skipped_slots + auto.dense_steps + auto.word_slots <= auto.slots_simulated,
        "overcounted slots: {ctx}"
    );
    assert!(
        auto.slots_simulated
            <= auto.skipped_slots + auto.dense_steps + auto.word_slots + auto.polls,
        "unaccounted slots ({} simulated, {} skipped, {} dense, {} word, {} polls): {ctx}",
        auto.slots_simulated,
        auto.skipped_slots,
        auto.dense_steps,
        auto.word_slots,
        auto.polls
    );
    // The forced-dense reference steps every non-dead-air slot densely and
    // never runs the adaptive policy.
    assert_eq!(
        dense.dense_steps + dense.skipped_slots,
        dense.slots_simulated,
        "dense accounting: {ctx}"
    );
    assert_eq!(dense.mode_switches, 0, "dense switched modes: {ctx}");
}

/// The shared construction cache behind the `cached` zoo members: one per
/// test process, so repeated runs genuinely share schedule handles (and
/// their interior position indices) the way a cached ensemble does.
fn shared_cache() -> &'static ConstructionCache {
    static CACHE: std::sync::OnceLock<ConstructionCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(ConstructionCache::new)
}

/// The deterministic protocol zoo exercised by every equivalence case.
fn protocols(n: u32, pattern: &WakePattern, seed: u64) -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(RoundRobin::new(n)),
        Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
        Box::new(WakeupWithS::new(
            n,
            pattern.s(),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(WakeupWithK::new(
            n,
            pattern.k() as u32,
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(SelectAmongFirst::new(
            n,
            pattern.s(),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(WaitAndGo::new(
            n,
            pattern.k() as u32,
            FamilyProvider::default(),
        )),
        Box::new(LocalDoubling::new(n).with_seed(seed)),
        Box::new(EnergyCapped::new(RoundRobin::new(n), 1)),
        // Randomized: hints are declined, so Auto must silently equal Dense.
        Box::new(Rpd::new(n)),
        // Cache-shared constructions: identical schedules, shared handles.
        Box::new(WakeupWithK::cached(
            n,
            pattern.k() as u32,
            &FamilyProvider::random_with_seed(seed),
            shared_cache(),
        )),
        Box::new(WakeupWithS::cached(
            n,
            pattern.s(),
            &FamilyProvider::random_with_seed(seed),
            shared_cache(),
        )),
    ]
}

/// The feedback-reactive (retiring) protocol zoo — the Komlós–Greenberg
/// resolvers that epoch-scoped hints unlocked for the sparse path. Run
/// under both stop rules.
fn retiring_protocols(n: u32, seed: u64) -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(FullResolution::new(
            n,
            (n / 4).max(1),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(RetiringRoundRobin::new(n)),
        Box::new(EnergyCapped::new(RetiringRoundRobin::new(n), 2)),
        Box::new(FullResolution::cached(
            n,
            (n / 4).max(1),
            &FamilyProvider::random_with_seed(seed),
            shared_cache(),
        )),
    ]
}

fn arb_pattern(n: u32) -> impl Strategy<Value = WakePattern> {
    btree_set(0..n, 1..=6usize).prop_flat_map(|ids| {
        let ids: Vec<u32> = ids.into_iter().collect();
        let len = ids.len();
        (Just(ids), proptest::collection::vec(0u64..300, len)).prop_map(|(ids, times)| {
            WakePattern::new(ids.into_iter().map(StationId).zip(times).collect())
                .expect("distinct ids")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse_equals_dense_on_random_patterns(
        pattern in arb_pattern(64),
        seed in 0u64..1_000,
    ) {
        // The whole zoo × both feedback models: the hybrid policy's mode
        // switches must be invisible in the observables under either model.
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in protocols(64, &pattern, seed) {
                assert_equivalent_under(
                    64,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    None,
                    StopRule::FirstSuccess,
                    fb,
                );
            }
        }
    }

    #[test]
    fn hybrid_bursts_equal_dense_on_batch_patterns(
        k in 2u32..8,
        s in 0u64..64,
        seed in 0u64..1_000,
    ) {
        // Simultaneous batch wakes are the shape the adaptive policy
        // dense-steps (wake-time burst detection): equivalence must hold
        // across the zoo exactly there, where sparse↔dense transitions are
        // most likely.
        let n = 64u32;
        let ids: Vec<StationId> = (0..k).map(|i| StationId(i * (n / 8))).collect();
        let pattern = WakePattern::simultaneous(&ids, s).expect("distinct ids");
        for protocol in protocols(n, &pattern, seed) {
            assert_equivalent(n, protocol.as_ref(), &pattern, seed, None);
        }
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in retiring_protocols(n, seed) {
                assert_equivalent_under(
                    n,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    Some(20_000),
                    StopRule::AllResolved,
                    fb,
                );
            }
        }
    }

    #[test]
    fn sparse_equals_dense_under_tight_caps(
        pattern in arb_pattern(32),
        seed in 0u64..1_000,
        cap in 1u64..400,
    ) {
        // Censored runs: the cap clamp must agree slot-for-slot too.
        for protocol in protocols(32, &pattern, seed) {
            assert_equivalent(32, protocol.as_ref(), &pattern, seed, Some(cap));
        }
    }

    #[test]
    fn sparse_equals_dense_under_all_resolved(
        pattern in arb_pattern(32),
        seed in 0u64..1_000,
    ) {
        // Full conflict resolution: feedback-driven retirement, multiple
        // successes per run, resolution order and all_resolved_at must all
        // match — under both feedback models.
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in retiring_protocols(32, seed) {
                assert_equivalent_under(
                    32,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    Some(20_000),
                    StopRule::AllResolved,
                    fb,
                );
            }
        }
    }
}

#[test]
fn sparse_equals_dense_on_structured_patterns() {
    // A deterministic grid over the classic adversarial pattern families and
    // universe sizes, including one n ≥ 256 configuration.
    for n in [16u32, 64, 256] {
        let ids: Vec<StationId> = (0..6).map(|i| StationId(i * (n / 8) + 1)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let patterns = [
            WakePattern::simultaneous(&ids, 0).unwrap(),
            WakePattern::simultaneous(&ids, 137).unwrap(),
            WakePattern::staggered(&ids, 5, 1).unwrap(),
            WakePattern::staggered(&ids, 5, 33).unwrap(),
            WakePattern::batches(&ids, 2, 50, &[3, 3]).unwrap(),
            WakePattern::uniform_window(&ids, 10, 100, &mut rng).unwrap(),
            WakePattern::trickle(&ids, 0, 0.2, &mut rng).unwrap(),
            // The block round-robin reaches last (worst case for RR).
            WakePattern::simultaneous(&(n - 4..n).map(StationId).collect::<Vec<_>>(), 0).unwrap(),
        ];
        for pattern in patterns.iter() {
            for seed in [0u64, 7] {
                for protocol in protocols(n, pattern, seed) {
                    assert_equivalent(n, protocol.as_ref(), pattern, seed, None);
                }
            }
        }
    }
}

#[test]
fn sparse_equals_dense_on_structured_all_resolved_patterns() {
    // The deterministic grid, replayed under StopRule::AllResolved with the
    // retiring zoo and both feedback models.
    for n in [16u32, 64] {
        let ids: Vec<StationId> = (0..5).map(|i| StationId(i * (n / 8) + 1)).collect();
        let patterns = [
            WakePattern::simultaneous(&ids, 0).unwrap(),
            WakePattern::simultaneous(&ids, 137).unwrap(),
            WakePattern::staggered(&ids, 5, 17).unwrap(),
            WakePattern::batches(&ids, 2, 40, &[3, 2]).unwrap(),
        ];
        for pattern in patterns.iter() {
            for seed in [0u64, 7] {
                for fb in [
                    FeedbackModel::NoCollisionDetection,
                    FeedbackModel::CollisionDetection,
                ] {
                    for protocol in retiring_protocols(n, seed) {
                        assert_equivalent_under(
                            n,
                            protocol.as_ref(),
                            pattern,
                            seed,
                            Some(50_000),
                            StopRule::AllResolved,
                            fb,
                        );
                        // The same protocols under the default stop rule
                        // (KG stopped at first success is a wake-up
                        // algorithm — §1).
                        assert_equivalent_under(
                            n,
                            protocol.as_ref(),
                            pattern,
                            seed,
                            Some(50_000),
                            StopRule::FirstSuccess,
                            fb,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn komlos_greenberg_all_resolved_runs_on_the_sparse_path() {
    // Acceptance: a full conflict-resolution run (Komlós–Greenberg shape,
    // feedback-driven retirement) must *execute sparse* — skipped slots,
    // far fewer polls than dense — with a bit-identical transcript.
    let n = 1024u32;
    let k = 16u32;
    let ids: Vec<StationId> = (0..k).map(|i| StationId(i * 60 + 7)).collect();
    let pattern = WakePattern::simultaneous(&ids, 9).unwrap();
    let protocol = FullResolution::new(n, k, FamilyProvider::default());
    let cfg = SimConfig::new(n)
        .until_all_resolved()
        .with_max_slots(500_000)
        .with_transcript();
    let auto = Simulator::new(cfg.clone())
        .run(&protocol, &pattern, 3)
        .unwrap();
    let dense = Simulator::new(cfg.with_engine(EngineMode::Dense))
        .run(&protocol, &pattern, 3)
        .unwrap();
    assert_eq!(auto.resolved.len(), k as usize, "all stations must resolve");
    assert_eq!(auto.resolved, dense.resolved);
    assert_eq!(auto.all_resolved_at, dense.all_resolved_at);
    assert_eq!(auto.transcript, dense.transcript);
    assert_eq!(auto.transmissions, dense.transmissions);
    // Sparse execution, no dense fallback: silent gaps were skipped and the
    // poll count collapsed from ≈ slots·k to ≈ transmission events.
    assert!(auto.skipped_slots > 0, "KG run did not skip any slots");
    assert_eq!(dense.skipped_slots, 0);
    assert!(
        auto.polls * 10 < dense.polls,
        "auto polls {} vs dense polls {} — sparse path not engaged",
        auto.polls,
        dense.polls
    );
}

#[test]
fn scenario_c_staggered_runs_on_the_sparse_path() {
    // Acceptance: a gap-heavy Scenario C run over the waking matrix must
    // execute sparse through the per-row PRF jumps — no TxHint::Dense
    // fallback and no adaptive dense takeover of the silent stretches.
    let n = 4096u32;
    let ids: Vec<StationId> = (0..8u32).map(|i| StationId(i * 500 + 17)).collect();
    let pattern = WakePattern::staggered(&ids, 3, 997).unwrap();
    let protocol = WakeupN::new(MatrixParams::new(n));
    let cfg = SimConfig::new(n).with_transcript();
    let auto = Simulator::new(cfg.clone())
        .run(&protocol, &pattern, 0)
        .unwrap();
    let dense = Simulator::new(cfg.with_engine(EngineMode::Dense))
        .run(&protocol, &pattern, 0)
        .unwrap();
    assert!(auto.solved());
    assert_eq!(auto.first_success, dense.first_success);
    assert_eq!(auto.winner, dense.winner);
    assert_eq!(auto.transcript, dense.transcript);
    assert!(auto.skipped_slots > 0, "Scenario C run did not skip slots");
    assert!(
        auto.polls < dense.polls,
        "auto polls {} vs dense polls {}",
        auto.polls,
        dense.polls
    );
}

#[test]
fn scenario_c_simultaneous_burst_dense_steps_adaptively() {
    // Acceptance for the hybrid engine: the simultaneous Scenario C burst —
    // success lands a few slots after the window boundary, so there is
    // nothing to skip — must be detected at wake time and run at dense
    // speed (dense stepping, no per-slot hint churn), with an outcome
    // bit-identical to the forced-dense reference.
    let n = 4096u32;
    let ids: Vec<StationId> = (0..8u32).map(|i| StationId(i * 500 + 17)).collect();
    let pattern = WakePattern::simultaneous(&ids, 11).unwrap();
    let protocol = WakeupN::new(MatrixParams::new(n));
    let cfg = SimConfig::new(n).with_transcript();
    let auto = Simulator::new(cfg.clone())
        .run(&protocol, &pattern, 0)
        .unwrap();
    let dense = Simulator::new(cfg.with_engine(EngineMode::Dense))
        .run(&protocol, &pattern, 0)
        .unwrap();
    assert!(auto.solved());
    assert_eq!(auto.transcript, dense.transcript);
    assert!(
        auto.mode_switches > 0,
        "adaptive policy never engaged on the burst"
    );
    assert!(
        auto.dense_steps + auto.word_slots > 0,
        "burst slots were not dense-stepped (polls {}, skipped {})",
        auto.polls,
        auto.skipped_slots
    );
    // Dense stepping means the engine does no more polling than the dense
    // reference over the stepped slots.
    assert!(auto.polls <= dense.polls);
}

#[test]
fn mid_run_yield_collapse_triggers_dense_stepping() {
    // Two stations whose first obligation is far away (slot 100, so the
    // wake-time batch detection sees a skippable gap and stays sparse) that
    // then collide every slot: the windowed yield tracker must notice the
    // zero-gap event stream and drop to dense stepping mid-run — with
    // observables identical to forced dense.
    struct LateJammerStation;
    impl mac_sim::Station for LateJammerStation {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, t: Slot) -> mac_sim::Action {
            mac_sim::Action::from_bool(t >= 100)
        }
        fn next_transmission(&mut self, after: Slot) -> mac_sim::TxHint {
            mac_sim::TxHint::at(after.max(100))
        }
    }
    struct LateJammer;
    impl Protocol for LateJammer {
        fn station(&self, _id: StationId, _seed: u64) -> Box<dyn mac_sim::Station> {
            Box::new(LateJammerStation)
        }
        fn name(&self) -> String {
            "late-jammer".into()
        }
    }
    let pattern = WakePattern::simultaneous(&[StationId(0), StationId(1)], 0).unwrap();
    let cfg = SimConfig::new(4).with_max_slots(300).with_transcript();
    let auto = Simulator::new(cfg.clone())
        .run(&LateJammer, &pattern, 0)
        .unwrap();
    let dense = Simulator::new(cfg.with_engine(EngineMode::Dense))
        .run(&LateJammer, &pattern, 0)
        .unwrap();
    assert_eq!(auto.transcript, dense.transcript);
    assert_eq!(auto.collisions, dense.collisions);
    assert!(
        auto.mode_switches > 0,
        "yield collapse never triggered dense stepping"
    );
    assert!(
        auto.dense_steps + auto.word_slots > 100,
        "dense_steps {} word_slots {}",
        auto.dense_steps,
        auto.word_slots
    );
    assert!(auto.skipped_slots + auto.dense_steps + auto.word_slots <= auto.slots_simulated);
}

// ---------------------------------------------------------------------
// Class-aggregated population equivalence: `PopulationMode::Classes`
// simulates one representative per equivalence class (stations in
// identical protocol state) with a multiplicity, so its `Outcome` and
// transcript must be bit-identical to the concrete per-station engine —
// only the work counters (`polls`, `skipped_slots`, `dense_steps`,
// `mode_switches`, `peak_units`) may differ, and `peak_units` is exactly
// the memory economy the mega-station engine buys.
// ---------------------------------------------------------------------

/// Run `protocol` under the concrete and the class-aggregated populations
/// and assert identical observables.
#[allow(clippy::too_many_arguments)]
fn assert_class_equivalent_under(
    n: u32,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    run_seed: u64,
    max_slots: Option<u64>,
    stop: StopRule,
    feedback: FeedbackModel,
) {
    let mut cfg = SimConfig::new(n).with_transcript().with_feedback(feedback);
    if stop == StopRule::AllResolved {
        cfg = cfg.until_all_resolved();
    }
    if let Some(cap) = max_slots {
        cfg = cfg.with_max_slots(cap);
    }
    let concrete = Simulator::new(cfg.clone())
        .run(protocol, pattern, run_seed)
        .unwrap();
    let classed = Simulator::new(cfg.with_classes())
        .run(protocol, pattern, run_seed)
        .unwrap();

    let shape = if pattern.is_blocks() {
        format!("blocks(k={}, s={})", pattern.k(), pattern.s())
    } else {
        format!("{:?}", pattern.wakes())
    };
    let ctx = format!(
        "protocol={} pattern={shape} seed={run_seed} cap={max_slots:?} stop={stop:?} fb={feedback:?}",
        protocol.name(),
    );
    assert_eq!(classed.s, concrete.s, "s: {ctx}");
    assert_eq!(
        classed.first_success, concrete.first_success,
        "first_success: {ctx}"
    );
    assert_eq!(classed.winner, concrete.winner, "winner: {ctx}");
    assert_eq!(
        classed.slots_simulated, concrete.slots_simulated,
        "slots_simulated: {ctx}"
    );
    assert_eq!(
        classed.transmissions, concrete.transmissions,
        "transmissions: {ctx}"
    );
    assert_eq!(
        classed.per_station_tx, concrete.per_station_tx,
        "per_station_tx: {ctx}"
    );
    assert_eq!(classed.collisions, concrete.collisions, "collisions: {ctx}");
    assert_eq!(
        classed.silent_slots, concrete.silent_slots,
        "silent_slots: {ctx}"
    );
    assert_eq!(classed.resolved, concrete.resolved, "resolved: {ctx}");
    assert_eq!(
        classed.all_resolved_at, concrete.all_resolved_at,
        "all_resolved_at: {ctx}"
    );
    assert_eq!(classed.transcript, concrete.transcript, "transcript: {ctx}");
    // Aggregation never needs more live units than the concrete engine
    // holds stations (singleton fallback is one unit per station).
    assert!(
        classed.peak_units <= concrete.peak_units,
        "classed peak_units {} > concrete {}: {ctx}",
        classed.peak_units,
        concrete.peak_units
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn classes_equal_concrete_on_random_patterns(
        pattern in arb_pattern(64),
        seed in 0u64..1_000,
    ) {
        // Scattered wake times: most batches are singletons, so this
        // exercises the class engine's degenerate (one-member) classes and
        // the singleton fallback for protocols without class constructors.
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in protocols(64, &pattern, seed) {
                assert_class_equivalent_under(
                    64,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    None,
                    StopRule::FirstSuccess,
                    fb,
                );
            }
        }
    }

    #[test]
    fn classes_equal_concrete_on_batch_patterns(
        k in 2u32..8,
        s in 0u64..64,
        seed in 0u64..1_000,
    ) {
        // Simultaneous batches are where classes genuinely aggregate:
        // one weighted unit stands in for the whole batch until feedback
        // diverges. Retiring resolvers under AllResolved force mid-run
        // splits (each own-success drops the winner out of the class).
        let n = 64u32;
        let ids: Vec<StationId> = (0..k).map(|i| StationId(i * (n / 8))).collect();
        let pattern = WakePattern::simultaneous(&ids, s).expect("distinct ids");
        for protocol in protocols(n, &pattern, seed) {
            assert_class_equivalent_under(
                n,
                protocol.as_ref(),
                &pattern,
                seed,
                None,
                StopRule::FirstSuccess,
                FeedbackModel::NoCollisionDetection,
            );
        }
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in retiring_protocols(n, seed) {
                assert_class_equivalent_under(
                    n,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    Some(20_000),
                    StopRule::AllResolved,
                    fb,
                );
            }
        }
    }

    #[test]
    fn classes_equal_concrete_under_all_resolved(
        pattern in arb_pattern(32),
        seed in 0u64..1_000,
    ) {
        // Feedback-driven retirement over arbitrary wake shapes: classes
        // must split/shrink exactly when the concrete stations diverge.
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in retiring_protocols(32, seed) {
                assert_class_equivalent_under(
                    32,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    Some(20_000),
                    StopRule::AllResolved,
                    fb,
                );
            }
        }
    }
}

#[test]
fn classes_equal_concrete_on_structured_patterns() {
    // The deterministic grid: block wakes (the mega-station shape), batch
    // and staggered arrivals, the whole zoo under both stop rules × both
    // feedback models, plus the forced-dense class engine (per-slot unit
    // polling) against the same reference.
    for n in [64u32, 256] {
        let ids: Vec<StationId> = (0..6).map(|i| StationId(i * (n / 8) + 1)).collect();
        let patterns = [
            WakePattern::range(0, n / 2, 3).unwrap(),
            WakePattern::simultaneous(&ids, 137).unwrap(),
            WakePattern::staggered(&ids, 5, 33).unwrap(),
            WakePattern::batches(&ids, 2, 50, &[3, 3]).unwrap(),
        ];
        for pattern in patterns.iter() {
            for seed in [0u64, 7] {
                for fb in [
                    FeedbackModel::NoCollisionDetection,
                    FeedbackModel::CollisionDetection,
                ] {
                    for protocol in protocols(n, pattern, seed) {
                        assert_class_equivalent_under(
                            n,
                            protocol.as_ref(),
                            pattern,
                            seed,
                            None,
                            StopRule::FirstSuccess,
                            fb,
                        );
                    }
                    for protocol in retiring_protocols(n, seed) {
                        assert_class_equivalent_under(
                            n,
                            protocol.as_ref(),
                            pattern,
                            seed,
                            Some(50_000),
                            StopRule::AllResolved,
                            fb,
                        );
                    }
                }
            }
        }
    }
    // The class engine forced dense (per-slot polling over units) is the
    // same observable machine — pin one representative case per protocol.
    let n = 64u32;
    let pattern = WakePattern::range(0, n / 2, 3).unwrap();
    let cfg = SimConfig::new(n).with_transcript();
    for protocol in protocols(n, &pattern, 7) {
        let concrete = Simulator::new(cfg.clone())
            .run(protocol.as_ref(), &pattern, 7)
            .unwrap();
        let classed_dense =
            Simulator::new(cfg.clone().with_classes().with_engine(EngineMode::Dense))
                .run(protocol.as_ref(), &pattern, 7)
                .unwrap();
        assert_eq!(
            classed_dense.transcript,
            concrete.transcript,
            "dense class engine transcript: {}",
            protocol.name()
        );
        assert_eq!(classed_dense.first_success, concrete.first_success);
        assert_eq!(classed_dense.per_station_tx, concrete.per_station_tx);
    }
}

#[test]
fn class_splits_mid_run_on_divergent_feedback() {
    // Purpose-built split scenario: a retiring round-robin batch wakes as
    // ONE class; every own-success retires exactly one member, so the class
    // must shed members one at a time (divergent feedback mid-run) while
    // the outcome stays bit-identical to eight concrete stations.
    let n = 64u32;
    let ids: Vec<StationId> = (0..8u32).map(|i| StationId(i * 7 + 2)).collect();
    let pattern = WakePattern::simultaneous(&ids, 11).unwrap();
    let protocol = RetiringRoundRobin::new(n);
    for fb in [
        FeedbackModel::NoCollisionDetection,
        FeedbackModel::CollisionDetection,
    ] {
        let cfg = SimConfig::new(n)
            .until_all_resolved()
            .with_max_slots(50_000)
            .with_transcript()
            .with_feedback(fb);
        let concrete = Simulator::new(cfg.clone())
            .run(&protocol, &pattern, 0)
            .unwrap();
        let classed = Simulator::new(cfg.with_classes())
            .run(&protocol, &pattern, 0)
            .unwrap();
        assert_eq!(concrete.resolved.len(), 8, "all stations must resolve");
        assert_eq!(classed.resolved, concrete.resolved);
        assert_eq!(classed.all_resolved_at, concrete.all_resolved_at);
        assert_eq!(classed.transcript, concrete.transcript);
        assert_eq!(classed.per_station_tx, concrete.per_station_tx);
        // The batch is genuinely aggregated: the class engine never held
        // eight separate units, the concrete engine always did.
        assert!(
            classed.peak_units < concrete.peak_units,
            "no aggregation: classed {} vs concrete {}",
            classed.peak_units,
            concrete.peak_units
        );
        assert_eq!(concrete.peak_units, 8);
    }
}

#[test]
fn mega_block_wake_runs_in_constant_units() {
    // Acceptance shape at test scale: a block wake of the entire universe
    // is ONE equivalence class for round-robin; the class engine must hold
    // O(1) units while matching the concrete outcome exactly.
    let n = 4096u32;
    let pattern = WakePattern::range(0, n, 0).unwrap();
    let protocol = RoundRobin::new(n);
    let cfg = SimConfig::new(n).with_transcript();
    let concrete = Simulator::new(cfg.clone())
        .run(&protocol, &pattern, 0)
        .unwrap();
    let classed = Simulator::new(cfg.with_classes())
        .run(&protocol, &pattern, 0)
        .unwrap();
    assert_eq!(classed.first_success, concrete.first_success);
    assert_eq!(classed.winner, concrete.winner);
    assert_eq!(classed.transcript, concrete.transcript);
    assert_eq!(classed.transmissions, concrete.transmissions);
    assert_eq!(concrete.peak_units as u32, n);
    assert_eq!(classed.peak_units, 1, "block wake is one class");
}

#[test]
fn sparse_engine_actually_engages() {
    // Guard against silently losing the speedup: on a sparse pattern the
    // auto engine must do strictly less polling work than dense.
    let n = 1024u32;
    let ids: Vec<StationId> = (n - 8..n).map(StationId).collect();
    let pattern = WakePattern::simultaneous(&ids, 0).unwrap();
    let auto = Simulator::new(SimConfig::new(n))
        .run(&RoundRobin::new(n), &pattern, 0)
        .unwrap();
    let dense = Simulator::new(SimConfig::new(n).with_engine(EngineMode::Dense))
        .run(&RoundRobin::new(n), &pattern, 0)
        .unwrap();
    assert_eq!(auto.first_success, dense.first_success);
    assert!(auto.skipped_slots > 1000, "skipped {}", auto.skipped_slots);
    assert!(
        auto.polls * 100 < dense.polls,
        "auto polls {} vs dense polls {}",
        auto.polls,
        dense.polls
    );
}
