//! Fault-injection and churn properties.
//!
//! Two families of guarantees:
//!
//! 1. **Zero-fault identity.** A config that *explicitly* carries the ideal
//!    channel and the empty churn script must be bit-identical — full
//!    `Outcome`, work counters included — to the plain config on the same
//!    engine path, across Dense / sparse Auto / Bitslab / Classes × both
//!    feedback models × both stop rules. The fault layer must be free when
//!    unused.
//!
//! 2. **Faulty-run engine independence.** With nonzero erasure / capture
//!    rates and churn scripts, every engine path must still agree on all
//!    observables (winner, latency, transcript, per-station energy,
//!    resolution order), on the deterministic-tier trace stream (fault and
//!    churn events included), and on the path-independent fault counters
//!    (`erasures`, `captures`, `churn_crashes`, `churn_rewakes`). Only
//!    `false_collisions` may differ — mishearing is perception-only and,
//!    like `polls`, exists only on slots a path materializes.
//!
//! Plus targeted robustness cases: full-rate erasure starves a run, capture
//! resolves collisions, permanent crashes censor `AllResolved` runs without
//! hanging, and crashing an already-retired station is still accounted.

use mac_sim::engine::StopRule;
use mac_wakeup::prelude::*;
use proptest::collection::btree_set;
use proptest::prelude::*;

/// The four observably-equivalent engine paths.
#[derive(Clone, Copy, Debug)]
enum Path {
    Dense,
    Sparse,
    Bitslab,
    Classes,
}

const PATHS: [Path; 4] = [Path::Dense, Path::Sparse, Path::Bitslab, Path::Classes];

fn base_cfg(n: u32, stop: StopRule, fb: FeedbackModel, cap: Option<u64>) -> SimConfig {
    let mut cfg = SimConfig::new(n).with_transcript().with_feedback(fb);
    if stop == StopRule::AllResolved {
        cfg = cfg.until_all_resolved();
    }
    if let Some(cap) = cap {
        cfg = cfg.with_max_slots(cap);
    }
    cfg
}

fn on_path(cfg: SimConfig, path: Path) -> SimConfig {
    match path {
        Path::Dense => cfg.with_engine(EngineMode::Dense),
        Path::Sparse => cfg,
        Path::Bitslab => cfg.with_engine(EngineMode::Bitslab),
        Path::Classes => cfg.with_classes(),
    }
}

/// Run once, recording the deterministic (channel-tier) trace stream.
fn run_traced(
    cfg: &SimConfig,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    run_seed: u64,
) -> (Outcome, Vec<TraceEvent>) {
    let mut rec = RecordingTracer::with_filter(TraceFilter::deterministic());
    let out = Simulator::new(cfg.clone())
        .run_traced(protocol, pattern, run_seed, &mut rec)
        .expect("run");
    (out, rec.into_events())
}

/// Assert cross-path agreement on every observable and on the
/// path-independent fault counters (`false_collisions` excepted).
fn assert_observables_equal(a: &Outcome, b: &Outcome, label: &str, ctx: &str) {
    assert_eq!(a.s, b.s, "s ({label}): {ctx}");
    assert_eq!(
        a.first_success, b.first_success,
        "first_success ({label}): {ctx}"
    );
    assert_eq!(a.winner, b.winner, "winner ({label}): {ctx}");
    assert_eq!(
        a.slots_simulated, b.slots_simulated,
        "slots_simulated ({label}): {ctx}"
    );
    assert_eq!(
        a.transmissions, b.transmissions,
        "transmissions ({label}): {ctx}"
    );
    assert_eq!(
        a.per_station_tx, b.per_station_tx,
        "per_station_tx ({label}): {ctx}"
    );
    assert_eq!(a.collisions, b.collisions, "collisions ({label}): {ctx}");
    assert_eq!(
        a.silent_slots, b.silent_slots,
        "silent_slots ({label}): {ctx}"
    );
    assert_eq!(a.resolved, b.resolved, "resolved ({label}): {ctx}");
    assert_eq!(
        a.all_resolved_at, b.all_resolved_at,
        "all_resolved_at ({label}): {ctx}"
    );
    assert_eq!(a.transcript, b.transcript, "transcript ({label}): {ctx}");
    assert_eq!(
        a.faults.erasures, b.faults.erasures,
        "erasures ({label}): {ctx}"
    );
    assert_eq!(
        a.faults.captures, b.faults.captures,
        "captures ({label}): {ctx}"
    );
    assert_eq!(
        a.faults.churn_crashes, b.faults.churn_crashes,
        "churn_crashes ({label}): {ctx}"
    );
    assert_eq!(
        a.faults.churn_rewakes, b.faults.churn_rewakes,
        "churn_rewakes ({label}): {ctx}"
    );
}

/// Run one `(cfg, protocol, pattern, seed)` case on all four engine paths
/// and assert agreement against the scalar-dense reference — observables
/// plus the deterministic trace stream.
fn assert_paths_agree(cfg: &SimConfig, protocol: &dyn Protocol, pattern: &WakePattern, seed: u64) {
    let (dense, dense_evs) =
        run_traced(&on_path(cfg.clone(), Path::Dense), protocol, pattern, seed);
    let ctx = format!(
        "protocol={} pattern={:?} seed={seed} channel={:?} stop={:?} fb={:?}",
        protocol.name(),
        pattern.wakes(),
        cfg.channel,
        cfg.stop,
        cfg.feedback,
    );
    for path in [Path::Sparse, Path::Bitslab, Path::Classes] {
        let (out, evs) = run_traced(&on_path(cfg.clone(), path), protocol, pattern, seed);
        assert_observables_equal(&out, &dense, &format!("{path:?} vs dense"), &ctx);
        assert_eq!(evs, dense_evs, "deterministic trace ({path:?}): {ctx}");
    }
}

/// The deterministic protocol zoo (mirrors `sparse_dense_equiv.rs`).
fn protocols(n: u32, pattern: &WakePattern, seed: u64) -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(RoundRobin::new(n)),
        Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
        Box::new(WakeupWithS::new(
            n,
            pattern.s(),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(SelectAmongFirst::new(
            n,
            pattern.s(),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(LocalDoubling::new(n).with_seed(seed)),
        Box::new(EnergyCapped::new(RoundRobin::new(n), 1)),
        // Randomized and hintless: forces the dense fallback everywhere.
        Box::new(Rpd::new(n)),
    ]
}

/// The feedback-reactive (retiring) zoo for `AllResolved` cases.
fn retiring_protocols(n: u32, seed: u64) -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(FullResolution::new(
            n,
            (n / 4).max(1),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(RetiringRoundRobin::new(n)),
    ]
}

fn arb_pattern(n: u32) -> impl Strategy<Value = WakePattern> {
    btree_set(0..n, 1..=6usize).prop_flat_map(|ids| {
        let ids: Vec<u32> = ids.into_iter().collect();
        let len = ids.len();
        (Just(ids), proptest::collection::vec(0u64..200, len)).prop_map(|(ids, times)| {
            WakePattern::new(ids.into_iter().map(StationId).zip(times).collect())
                .expect("distinct ids")
        })
    })
}

// ---------------------------------------------------------------------
// 1. Zero-fault identity: explicit ideal channel + empty churn script is
//    byte-for-byte the run you get without them.
// ---------------------------------------------------------------------

/// Compare two outcomes for *bit identity* — every field, work counters
/// included — via their exhaustive `Debug` rendering.
fn assert_bit_identical(a: &Outcome, b: &Outcome, ctx: &str) {
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "outcome drifted: {ctx}");
}

fn assert_zero_fault_identity(
    n: u32,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    seed: u64,
    stop: StopRule,
    fb: FeedbackModel,
    cap: Option<u64>,
) {
    let cfg = base_cfg(n, stop, fb, cap);
    let pinned = cfg
        .clone()
        .with_channel(ChannelModel::ideal())
        .with_churn(ChurnScript::none());
    for path in PATHS {
        let plain = Simulator::new(on_path(cfg.clone(), path))
            .run(protocol, pattern, seed)
            .unwrap();
        let explicit = Simulator::new(on_path(pinned.clone(), path))
            .run(protocol, pattern, seed)
            .unwrap();
        let ctx = format!(
            "path={path:?} protocol={} pattern={:?} seed={seed} stop={stop:?} fb={fb:?}",
            protocol.name(),
            pattern.wakes(),
        );
        assert!(!explicit.faults.any(), "phantom faults: {ctx}");
        assert_bit_identical(&explicit, &plain, &ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn zero_fault_configs_are_bit_identical_to_default(
        pattern in arb_pattern(48),
        seed in 0u64..1_000,
    ) {
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in protocols(48, &pattern, seed) {
                assert_zero_fault_identity(
                    48, protocol.as_ref(), &pattern, seed,
                    StopRule::FirstSuccess, fb, None,
                );
            }
            for protocol in retiring_protocols(48, seed) {
                assert_zero_fault_identity(
                    48, protocol.as_ref(), &pattern, seed,
                    StopRule::AllResolved, fb, Some(20_000),
                );
            }
        }
    }

    // -----------------------------------------------------------------
    // 2. Faulty-run engine independence.
    // -----------------------------------------------------------------

    #[test]
    fn faulty_runs_agree_across_engine_paths(
        pattern in arb_pattern(48),
        seed in 0u64..1_000,
        erasure in 0u32..400_000,
        capture in 0u32..900_000,
    ) {
        let channel = ChannelModel::ideal()
            .with_erasure_ppm(erasure)
            .with_capture_ppm(capture)
            .with_false_collision_ppm(250_000);
        let churn = ChurnScript::random(RandomChurn {
            crash_ppm: 400_000,
            lifetime: 64,
            rewake_after: Some(40),
        })
        .unwrap();
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            let cfg = base_cfg(48, StopRule::FirstSuccess, fb, Some(30_000))
                .with_channel(channel)
                .with_churn(churn.clone());
            for protocol in protocols(48, &pattern, seed) {
                assert_paths_agree(&cfg, protocol.as_ref(), &pattern, seed);
            }
        }
    }

    #[test]
    fn faulty_all_resolved_runs_agree_across_engine_paths(
        pattern in arb_pattern(32),
        seed in 0u64..1_000,
        erasure in 0u32..300_000,
    ) {
        // Retirement + erasure: a lost success must delay resolution
        // identically everywhere; churned members must leave classes the
        // same way retired ones do.
        let channel = ChannelModel::ideal().with_erasure_ppm(erasure);
        let churn = ChurnScript::random(RandomChurn {
            crash_ppm: 300_000,
            lifetime: 80,
            rewake_after: Some(60),
        })
        .unwrap();
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            let cfg = base_cfg(32, StopRule::AllResolved, fb, Some(30_000))
                .with_channel(channel)
                .with_churn(churn.clone());
            for protocol in retiring_protocols(32, seed) {
                assert_paths_agree(&cfg, protocol.as_ref(), &pattern, seed);
            }
        }
    }
}

#[test]
fn faulty_structured_batches_agree_across_engine_paths() {
    // Simultaneous batches are where the class engine genuinely aggregates
    // and where the word kernel engages: scripted churn must split classes
    // mid-run identically to the concrete engines.
    let n = 64u32;
    let ids: Vec<StationId> = (0..8u32).map(|i| StationId(i * 7 + 2)).collect();
    let pattern = WakePattern::simultaneous(&ids, 11).unwrap();
    let churn = ChurnScript::scripted(vec![
        ChurnEntry {
            id: ids[1],
            crash: 15,
            rewake: Some(90),
        },
        ChurnEntry {
            id: ids[4],
            crash: 30,
            rewake: None,
        },
    ])
    .unwrap();
    let channel = ChannelModel::ideal()
        .with_erasure_ppm(150_000)
        .with_capture_ppm(500_000);
    for fb in [
        FeedbackModel::NoCollisionDetection,
        FeedbackModel::CollisionDetection,
    ] {
        for stop in [StopRule::FirstSuccess, StopRule::AllResolved] {
            let cfg = base_cfg(n, stop, fb, Some(50_000))
                .with_channel(channel)
                .with_churn(churn.clone());
            let zoo = match stop {
                StopRule::FirstSuccess => protocols(n, &pattern, 7),
                StopRule::AllResolved => retiring_protocols(n, 7),
            };
            for protocol in zoo {
                assert_paths_agree(&cfg, protocol.as_ref(), &pattern, 7);
            }
        }
    }
}

// ---------------------------------------------------------------------
// 3. Targeted robustness cases.
// ---------------------------------------------------------------------

/// A certain-erasure channel starves the run: every ground-truth success is
/// eaten, the run censors at the cap, and the energy ledger still charges
/// the transmitter.
#[test]
fn full_erasure_starves_the_run() {
    let n = 8u32;
    let pattern = WakePattern::simultaneous(&[StationId(3)], 0).unwrap();
    let channel = ChannelModel::ideal().with_erasure_ppm(1_000_000);
    for path in PATHS {
        let cfg = on_path(
            base_cfg(
                n,
                StopRule::FirstSuccess,
                FeedbackModel::NoCollisionDetection,
                Some(200),
            )
            .with_channel(channel),
            path,
        );
        let out = Simulator::new(cfg)
            .run(&RoundRobin::new(n), &pattern, 1)
            .unwrap();
        assert!(!out.solved(), "erased run solved ({path:?})");
        assert_eq!(out.latency(), None);
        assert!(
            out.transmissions > 0,
            "station never transmitted ({path:?})"
        );
        // Solo transmitter: every transmission was a ground-truth success,
        // and the channel erased each one.
        assert_eq!(out.faults.erasures, out.transmissions, "({path:?})");
        assert_eq!(out.collisions, 0);
    }
}

/// A certain-capture channel resolves a two-way collision on the spot: the
/// winner is one of the ground-truth contenders and the slot records a
/// success.
#[test]
fn full_capture_resolves_collisions() {
    struct JamStation;
    impl Station for JamStation {
        fn wake(&mut self, _s: Slot) {}
        fn act(&mut self, _t: Slot) -> Action {
            Action::Transmit
        }
        fn next_transmission(&mut self, after: Slot) -> TxHint {
            TxHint::at(after)
        }
    }
    struct Jam;
    impl Protocol for Jam {
        fn station(&self, _id: StationId, _seed: u64) -> Box<dyn Station> {
            Box::new(JamStation)
        }
        fn name(&self) -> String {
            "jam".into()
        }
    }
    let ids = [StationId(1), StationId(5)];
    let pattern = WakePattern::simultaneous(&ids, 4).unwrap();
    let channel = ChannelModel::ideal().with_capture_ppm(1_000_000);
    for path in [Path::Dense, Path::Sparse, Path::Bitslab] {
        let cfg = on_path(
            base_cfg(
                8,
                StopRule::FirstSuccess,
                FeedbackModel::NoCollisionDetection,
                Some(100),
            )
            .with_channel(channel),
            path,
        );
        let out = Simulator::new(cfg).run(&Jam, &pattern, 9).unwrap();
        assert_eq!(out.first_success, Some(4), "({path:?})");
        let w = out.winner.expect("captured winner");
        assert!(ids.contains(&w), "winner {w:?} not a contender ({path:?})");
        assert_eq!(out.faults.captures, 1, "({path:?})");
        // The capture rewrote the outcome: no collision reached the
        // transcript.
        assert_eq!(out.collisions, 0, "({path:?})");
    }
}

/// Mishearing silence as noise only exists under collision detection, and
/// never perturbs the transcript or the result.
#[test]
fn false_collisions_are_perception_only() {
    let n = 16u32;
    let pattern = WakePattern::simultaneous(&[StationId(9)], 0).unwrap();
    let channel = ChannelModel::ideal().with_false_collision_ppm(1_000_000);
    let protocol = RoundRobin::new(n);
    let clean = Simulator::new(base_cfg(
        n,
        StopRule::FirstSuccess,
        FeedbackModel::CollisionDetection,
        None,
    ))
    .run(&protocol, &pattern, 2)
    .unwrap();
    for fb in [
        FeedbackModel::NoCollisionDetection,
        FeedbackModel::CollisionDetection,
    ] {
        let out = Simulator::new(
            base_cfg(n, StopRule::FirstSuccess, fb, None)
                .with_channel(channel)
                .with_engine(EngineMode::Dense),
        )
        .run(&protocol, &pattern, 2)
        .unwrap();
        assert_eq!(out.first_success, clean.first_success, "fb={fb:?}");
        assert_eq!(out.winner, clean.winner, "fb={fb:?}");
        assert_eq!(out.transcript, clean.transcript, "fb={fb:?}");
        match fb {
            // Under NCD silence and noise are indistinguishable: the model
            // is a no-op by construction.
            FeedbackModel::NoCollisionDetection => {
                assert_eq!(out.faults.false_collisions, 0, "fb={fb:?}")
            }
            // Dense materializes every slot: each effectively silent slot
            // before the success is misheard at full rate.
            FeedbackModel::CollisionDetection => {
                assert_eq!(out.faults.false_collisions, out.silent_slots, "fb={fb:?}")
            }
        }
    }
}

/// Crash before the first turn, re-wake later: the fresh instance solves on
/// its own schedule, and every path tells the same story — counters and
/// churn trace events included.
#[test]
fn churn_crash_and_rewake_round_trip() {
    let n = 8u32;
    let id = StationId(3);
    let pattern = WakePattern::simultaneous(&[id], 0).unwrap();
    // Round-robin's first turn is slot 3; the crash at slot 1 precedes it,
    // the re-wake at slot 5 makes the next turn slot 11.
    let churn = ChurnScript::scripted(vec![ChurnEntry {
        id,
        crash: 1,
        rewake: Some(5),
    }])
    .unwrap();
    for path in PATHS {
        let cfg = on_path(
            base_cfg(
                n,
                StopRule::FirstSuccess,
                FeedbackModel::NoCollisionDetection,
                Some(100),
            )
            .with_churn(churn.clone()),
            path,
        );
        let (out, evs) = run_traced(&cfg, &RoundRobin::new(n), &pattern, 6);
        assert_eq!(out.first_success, Some(11), "({path:?})");
        assert_eq!(out.winner, Some(id), "({path:?})");
        assert_eq!(out.faults.churn_crashes, 1, "({path:?})");
        assert_eq!(out.faults.churn_rewakes, 1, "({path:?})");
        assert!(
            evs.iter()
                .any(|ev| matches!(ev, TraceEvent::ChurnCrash { slot: 1, id: i } if *i == id)),
            "missing churn_crash event ({path:?}): {evs:?}"
        );
        assert!(
            evs.iter()
                .any(|ev| matches!(ev, TraceEvent::ChurnRewake { slot: 5, id: i } if *i == id)),
            "missing churn_rewake event ({path:?}): {evs:?}"
        );
    }
}

/// `StopRule::AllResolved` with a permanent crash before the victim's
/// success: the run must *terminate* at the cap and report censoring
/// (`all_resolved_at == None`, survivor resolved) on every path — never
/// hang waiting for a dead station.
#[test]
fn all_resolved_censors_on_permanent_crash() {
    let n = 16u32;
    let victim = StationId(9);
    let survivor = StationId(2);
    let pattern = WakePattern::simultaneous(&[survivor, victim], 0).unwrap();
    // Retiring round-robin: survivor's turn is slot 2, victim's slot 9; the
    // crash at slot 5 kills the victim before it ever transmits.
    let churn = ChurnScript::scripted(vec![ChurnEntry {
        id: victim,
        crash: 5,
        rewake: None,
    }])
    .unwrap();
    let cap = 5_000u64;
    for fb in [
        FeedbackModel::NoCollisionDetection,
        FeedbackModel::CollisionDetection,
    ] {
        for path in PATHS {
            let cfg = on_path(
                base_cfg(n, StopRule::AllResolved, fb, Some(cap)).with_churn(churn.clone()),
                path,
            );
            let out = Simulator::new(cfg)
                .run(&RetiringRoundRobin::new(n), &pattern, 4)
                .unwrap();
            assert_eq!(out.all_resolved_at, None, "({path:?} fb={fb:?})");
            assert_eq!(out.slots_simulated, cap, "({path:?} fb={fb:?})");
            assert_eq!(
                out.resolved.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
                vec![survivor],
                "({path:?} fb={fb:?})"
            );
            assert_eq!(out.faults.churn_crashes, 1, "({path:?} fb={fb:?})");
            assert_eq!(out.faults.churn_rewakes, 0, "({path:?} fb={fb:?})");
        }
    }
}

/// Crashing a station that already retired out of its equivalence class is
/// still a churn event — the concrete engine keeps retired stations in its
/// roster, so the class engine must account the crash identically.
#[test]
fn crashing_a_retired_station_is_counted_on_every_path() {
    let n = 16u32;
    let ids = [StationId(2), StationId(9)];
    let pattern = WakePattern::simultaneous(&ids, 0).unwrap();
    // Station 2 resolves at slot 2 and retires; the crash at slot 5 —
    // while station 9 is still unresolved, so the run is live — hits a
    // member already gone from its class.
    let churn = ChurnScript::scripted(vec![ChurnEntry {
        id: ids[0],
        crash: 5,
        rewake: None,
    }])
    .unwrap();
    let cfg = base_cfg(
        n,
        StopRule::AllResolved,
        FeedbackModel::NoCollisionDetection,
        Some(1_000),
    )
    .with_churn(churn);
    let protocol = RetiringRoundRobin::new(n);
    let (concrete, concrete_evs) =
        run_traced(&on_path(cfg.clone(), Path::Dense), &protocol, &pattern, 3);
    assert_eq!(concrete.faults.churn_crashes, 1);
    for path in [Path::Sparse, Path::Bitslab, Path::Classes] {
        let (out, evs) = run_traced(&on_path(cfg.clone(), path), &protocol, &pattern, 3);
        assert_observables_equal(
            &out,
            &concrete,
            &format!("{path:?} vs dense"),
            "retired crash",
        );
        assert_eq!(evs, concrete_evs, "deterministic trace ({path:?})");
    }
    // Both stations resolved before the crash: the run still completes.
    assert_eq!(concrete.resolved.len(), 2);
    assert!(concrete.all_resolved_at.is_some());
}
