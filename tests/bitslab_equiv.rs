//! The bit-parallel word kernel must be **observationally identical** to
//! the scalar engines: `EngineMode::Bitslab` gathers 64-slot tiles of
//! per-station transmit bits ([`Station::fill_tx_word`], with a generic
//! hint-based fill for everyone else), transposes them into per-slot words
//! and settles each slot from a popcount — and none of that may be visible
//! in the outcome, the transcript, or the channel-tier trace stream. Only
//! the work counters (`word_slots` vs `dense_steps`/`polls`) may differ.
//!
//! Pinned here across the protocol zoo × both feedback models × random,
//! batch and block wake patterns × both stop rules, including mid-burst
//! success and retirement splits (a success inside a 64-slot tile
//! invalidates the planned words of success-scoped stations; a retirement
//! removes a planned transmitter mid-tile) — the exact places where a
//! stale tile would silently corrupt the channel.
//!
//! Three-way comparison per case: forced scalar dense (the ground-truth
//! reference), forced `Bitslab`, and `Auto` (whose adaptive burst windows
//! run the same kernel). The channel-tier trace is compared as serialized
//! bytes, so event *encoding* divergence is caught too.

use mac_sim::engine::StopRule;
use mac_sim::tracer::{RecordingTracer, TraceEvent, TraceFilter};
use mac_wakeup::prelude::*;
use proptest::collection::btree_set;
use proptest::prelude::*;

/// Run under `engine`, recording the deterministic (channel-tier) stream.
fn run_channel(
    cfg: &SimConfig,
    engine: EngineMode,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    run_seed: u64,
) -> (Outcome, Vec<TraceEvent>) {
    let mut rec = RecordingTracer::with_filter(TraceFilter::deterministic());
    let out = Simulator::new(cfg.clone().with_engine(engine))
        .run_traced(protocol, pattern, run_seed, &mut rec)
        .expect("run");
    (out, rec.into_events())
}

/// Assert that two outcomes agree on every cross-engine observable.
fn assert_observables_equal(a: &Outcome, b: &Outcome, label: &str, ctx: &str) {
    assert_eq!(a.s, b.s, "s ({label}): {ctx}");
    assert_eq!(
        a.first_success, b.first_success,
        "first_success ({label}): {ctx}"
    );
    assert_eq!(a.winner, b.winner, "winner ({label}): {ctx}");
    assert_eq!(a.latency(), b.latency(), "latency ({label}): {ctx}");
    assert_eq!(
        a.slots_simulated, b.slots_simulated,
        "slots_simulated ({label}): {ctx}"
    );
    assert_eq!(
        a.transmissions, b.transmissions,
        "transmissions ({label}): {ctx}"
    );
    assert_eq!(
        a.per_station_tx, b.per_station_tx,
        "per_station_tx ({label}): {ctx}"
    );
    assert_eq!(a.collisions, b.collisions, "collisions ({label}): {ctx}");
    assert_eq!(
        a.silent_slots, b.silent_slots,
        "silent_slots ({label}): {ctx}"
    );
    assert_eq!(a.resolved, b.resolved, "resolved ({label}): {ctx}");
    assert_eq!(
        a.all_resolved_at, b.all_resolved_at,
        "all_resolved_at ({label}): {ctx}"
    );
    assert_eq!(a.transcript, b.transcript, "transcript ({label}): {ctx}");
}

/// Run `protocol` under scalar dense, forced `Bitslab` and `Auto`, and
/// assert bit-identical observables, channel-tier trace bytes, and the
/// slot-accounting invariant on the kernel paths.
#[allow(clippy::too_many_arguments)]
fn assert_bitslab_equivalent_under(
    n: u32,
    protocol: &dyn Protocol,
    pattern: &WakePattern,
    run_seed: u64,
    max_slots: Option<u64>,
    stop: StopRule,
    feedback: FeedbackModel,
) {
    let mut cfg = SimConfig::new(n).with_transcript().with_feedback(feedback);
    if stop == StopRule::AllResolved {
        cfg = cfg.until_all_resolved();
    }
    if let Some(cap) = max_slots {
        cfg = cfg.with_max_slots(cap);
    }
    let (dense, dense_evs) = run_channel(&cfg, EngineMode::Dense, protocol, pattern, run_seed);
    let (slab, slab_evs) = run_channel(&cfg, EngineMode::Bitslab, protocol, pattern, run_seed);
    let (auto, auto_evs) = run_channel(&cfg, EngineMode::Auto, protocol, pattern, run_seed);

    let shape = if pattern.is_blocks() {
        format!("blocks(k={}, s={})", pattern.k(), pattern.s())
    } else {
        format!("{:?}", pattern.wakes())
    };
    let ctx = format!(
        "protocol={} pattern={shape} seed={run_seed} cap={max_slots:?} stop={stop:?} fb={feedback:?}",
        protocol.name(),
    );
    assert_observables_equal(&slab, &dense, "bitslab vs dense", &ctx);
    assert_observables_equal(&auto, &dense, "auto vs dense", &ctx);

    // Channel-tier trace: identical events AND identical serialized bytes.
    assert_eq!(slab_evs, dense_evs, "bitslab channel events: {ctx}");
    assert_eq!(auto_evs, dense_evs, "auto channel events: {ctx}");
    let bytes = |evs: &[TraceEvent]| -> Vec<u8> {
        let mut buf = Vec::new();
        for ev in evs {
            buf.extend_from_slice(format!("{ev:?}\n").as_bytes());
        }
        buf
    };
    assert_eq!(
        bytes(&slab_evs),
        bytes(&dense_evs),
        "bitslab channel trace bytes: {ctx}"
    );

    // Slot accounting with the word-kernel counter, both kernel paths.
    for (label, out) in [("bitslab", &slab), ("auto", &auto)] {
        assert!(
            out.skipped_slots + out.dense_steps + out.word_slots <= out.slots_simulated,
            "overcounted slots ({label}): {ctx}"
        );
        assert!(
            out.slots_simulated <= out.skipped_slots + out.dense_steps + out.word_slots + out.polls,
            "unaccounted slots ({label}, {} simulated, {} skipped, {} dense, {} word, \
             {} polls): {ctx}",
            out.slots_simulated,
            out.skipped_slots,
            out.dense_steps,
            out.word_slots,
            out.polls
        );
    }
    // The scalar reference never touches the kernel. The forced-kernel run
    // has no sparse path: every slot is a dead-air skip, a word-resolved
    // tile slot, or — after a permanent TxHint::Dense fallback — a scalar
    // dense step, so its accounting is exact (no `≤ polls` slack).
    assert_eq!(dense.word_slots, 0, "dense ran the kernel: {ctx}");
    assert_eq!(
        slab.skipped_slots + slab.dense_steps + slab.word_slots,
        slab.slots_simulated,
        "bitslab accounting: {ctx}"
    );
}

/// The deterministic protocol zoo (mirrors `sparse_dense_equiv.rs`): the
/// structured protocols with bespoke `fill_tx_word` tiles — round-robin,
/// the doubling-schedule family, the waking matrix — plus the generic-fill
/// rest, the randomized hintless member and cache-shared constructions.
fn protocols(n: u32, pattern: &WakePattern, seed: u64) -> Vec<Box<dyn Protocol>> {
    let cache = ConstructionCache::new();
    vec![
        Box::new(RoundRobin::new(n)),
        Box::new(WakeupN::new(MatrixParams::new(n).with_seed(seed))),
        Box::new(WakeupWithS::new(
            n,
            pattern.s(),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(WakeupWithK::new(
            n,
            pattern.k() as u32,
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(SelectAmongFirst::new(
            n,
            pattern.s(),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(WaitAndGo::new(
            n,
            pattern.k() as u32,
            FamilyProvider::default(),
        )),
        Box::new(LocalDoubling::new(n).with_seed(seed)),
        Box::new(EnergyCapped::new(RoundRobin::new(n), 1)),
        // Randomized and hintless: the kernel's generic fill must match the
        // scalar engine poll for poll.
        Box::new(Rpd::new(n)),
        // Cache-shared construction: word planning over shared handles.
        Box::new(WakeupWithS::cached(
            n,
            pattern.s(),
            &FamilyProvider::random_with_seed(seed),
            &cache,
        )),
    ]
}

/// The feedback-reactive (retiring) zoo: mid-burst retirement splits.
fn retiring_protocols(n: u32, seed: u64) -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(FullResolution::new(
            n,
            (n / 4).max(1),
            FamilyProvider::random_with_seed(seed),
        )),
        Box::new(RetiringRoundRobin::new(n)),
        Box::new(EnergyCapped::new(RetiringRoundRobin::new(n), 2)),
    ]
}

fn arb_pattern(n: u32) -> impl Strategy<Value = WakePattern> {
    btree_set(0..n, 1..=6usize).prop_flat_map(|ids| {
        let ids: Vec<u32> = ids.into_iter().collect();
        let len = ids.len();
        (Just(ids), proptest::collection::vec(0u64..300, len)).prop_map(|(ids, times)| {
            WakePattern::new(ids.into_iter().map(StationId).zip(times).collect())
                .expect("distinct ids")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bitslab_equals_scalar_on_random_patterns(
        pattern in arb_pattern(64),
        seed in 0u64..1_000,
    ) {
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in protocols(64, &pattern, seed) {
                assert_bitslab_equivalent_under(
                    64,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    None,
                    StopRule::FirstSuccess,
                    fb,
                );
            }
        }
    }

    #[test]
    fn bitslab_equals_scalar_on_batch_patterns(
        k in 2u32..8,
        s in 0u64..64,
        seed in 0u64..1_000,
    ) {
        // Simultaneous batches: the shape the kernel exists for. A success
        // typically lands inside the first tile, so the tile-invalidation
        // path (mid-burst success splits) runs on every case.
        let n = 64u32;
        let ids: Vec<StationId> = (0..k).map(|i| StationId(i * (n / 8))).collect();
        let pattern = WakePattern::simultaneous(&ids, s).expect("distinct ids");
        for protocol in protocols(n, &pattern, seed) {
            assert_bitslab_equivalent_under(
                n,
                protocol.as_ref(),
                &pattern,
                seed,
                None,
                StopRule::FirstSuccess,
                FeedbackModel::NoCollisionDetection,
            );
        }
        // Retirement mid-tile: each own-success removes a planned
        // transmitter from every already-filled word after it.
        for fb in [FeedbackModel::NoCollisionDetection, FeedbackModel::CollisionDetection] {
            for protocol in retiring_protocols(n, seed) {
                assert_bitslab_equivalent_under(
                    n,
                    protocol.as_ref(),
                    &pattern,
                    seed,
                    Some(20_000),
                    StopRule::AllResolved,
                    fb,
                );
            }
        }
    }

    #[test]
    fn bitslab_equals_scalar_under_tight_caps(
        pattern in arb_pattern(32),
        seed in 0u64..1_000,
        cap in 1u64..400,
    ) {
        // Censored runs: the cap may cut a 64-slot tile short — the kernel
        // must not resolve (or count) slots past the clamp.
        for protocol in protocols(32, &pattern, seed) {
            assert_bitslab_equivalent_under(
                32,
                protocol.as_ref(),
                &pattern,
                seed,
                Some(cap),
                StopRule::FirstSuccess,
                FeedbackModel::NoCollisionDetection,
            );
        }
    }
}

#[test]
fn bitslab_equals_scalar_on_block_patterns() {
    // Deterministic block wakes (the mega-station shape) and the worst-case
    // round-robin block, at sizes that cross tile boundaries (n > 64 means
    // multi-tile bursts; the last tile is partial).
    for n in [16u32, 64, 256] {
        let blocks = [
            WakePattern::range(0, n / 2, 3).unwrap(),
            WakePattern::range(n / 4, (n / 4) * 2, 137).unwrap(),
            WakePattern::simultaneous(&(n - 4..n).map(StationId).collect::<Vec<_>>(), 0).unwrap(),
        ];
        for pattern in blocks.iter() {
            for seed in [0u64, 7] {
                for fb in [
                    FeedbackModel::NoCollisionDetection,
                    FeedbackModel::CollisionDetection,
                ] {
                    for protocol in protocols(n, pattern, seed) {
                        assert_bitslab_equivalent_under(
                            n,
                            protocol.as_ref(),
                            pattern,
                            seed,
                            None,
                            StopRule::FirstSuccess,
                            fb,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn bitslab_equals_scalar_on_staggered_retirement() {
    // Staggered arrivals under AllResolved: wakes land mid-tile, successes
    // and retirements interleave with tile refills across both models.
    for n in [32u32, 64] {
        let ids: Vec<StationId> = (0..6).map(|i| StationId(i * (n / 8) + 1)).collect();
        let patterns = [
            WakePattern::staggered(&ids, 5, 1).unwrap(),
            WakePattern::staggered(&ids, 5, 33).unwrap(),
            WakePattern::batches(&ids, 2, 40, &[3, 3]).unwrap(),
        ];
        for pattern in patterns.iter() {
            for seed in [0u64, 7] {
                for fb in [
                    FeedbackModel::NoCollisionDetection,
                    FeedbackModel::CollisionDetection,
                ] {
                    for protocol in retiring_protocols(n, seed) {
                        assert_bitslab_equivalent_under(
                            n,
                            protocol.as_ref(),
                            pattern,
                            seed,
                            Some(50_000),
                            StopRule::AllResolved,
                            fb,
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn bitslab_engages_the_word_kernel_on_bursts() {
    // Guard against the kernel silently never running: on a dense burst the
    // forced-kernel engine must resolve (nearly) everything by words, and
    // poll strictly less than the scalar reference.
    let n = 256u32;
    let pattern = WakePattern::range(0, n, 0).unwrap();
    let protocol = RoundRobin::new(n);
    let cfg = SimConfig::new(n).with_transcript();
    let (dense, _) = run_channel(&cfg, EngineMode::Dense, &protocol, &pattern, 0);
    let (slab, _) = run_channel(&cfg, EngineMode::Bitslab, &protocol, &pattern, 0);
    assert_eq!(slab.transcript, dense.transcript);
    assert!(slab.word_slots > 0, "kernel never engaged");
    assert_eq!(slab.word_slots + slab.skipped_slots, slab.slots_simulated);
    assert!(
        slab.polls < dense.polls,
        "kernel polls {} not below scalar polls {}",
        slab.polls,
        dense.polls
    );
}

#[test]
fn bitslab_mode_composes_with_class_population() {
    // PopulationMode::Classes has no word kernel (units are weighted, not
    // 64-wide), so EngineMode::Bitslab degrades to dense unit polling there
    // — but the combination must still be observationally exact.
    let n = 64u32;
    let patterns = [
        WakePattern::range(0, n / 2, 3).unwrap(),
        WakePattern::simultaneous(
            &(0..6u32).map(|i| StationId(i * 7 + 2)).collect::<Vec<_>>(),
            11,
        )
        .unwrap(),
    ];
    for pattern in patterns.iter() {
        for protocol in protocols(n, pattern, 7) {
            let cfg = SimConfig::new(n).with_transcript();
            let (concrete, concrete_evs) =
                run_channel(&cfg, EngineMode::Dense, protocol.as_ref(), pattern, 7);
            let classed_cfg = cfg.clone().with_classes();
            let (classed, classed_evs) = run_channel(
                &classed_cfg,
                EngineMode::Bitslab,
                protocol.as_ref(),
                pattern,
                7,
            );
            let ctx = format!("protocol={}", protocol.name());
            assert_observables_equal(&classed, &concrete, "classed bitslab vs dense", &ctx);
            assert_eq!(classed_evs, concrete_evs, "channel events: {ctx}");
        }
    }
}
