//! Consistency between the paper's theorems, as measured end-to-end:
//! the lower bound can never exceed a correct algorithm's worst case, the
//! Corollary 2.1 identity holds numerically, and the §6 randomized bounds
//! bracket the measured expectations.

use mac_wakeup::prelude::*;
use selectors::schedule::RoundRobinSchedule;

#[test]
fn lower_bound_is_below_every_upper_bound() {
    // For each (n, k): the Theorem 2.1 forced rounds (a lower bound on any
    // algorithm) must not exceed the measured worst latency (+1 slot→round
    // conversion) of the paper's own algorithms on the adversary's favourite
    // pattern — otherwise either the adversary or an algorithm is broken.
    let n = 64u32;
    let sim = Simulator::new(SimConfig::new(n).with_max_slots(100_000));
    for k in [2u32, 4, 8, 32, 60] {
        let adv = SwapChainAdversary::new(n, k);
        let forced = adv.run(&RoundRobinSchedule::new(n)).forced_rounds;
        // forced is a lower bound certificate for round-robin specifically;
        // compare against round-robin's worst measured latency over the
        // chain's own target sets.
        let chain = adv.run(&RoundRobinSchedule::new(n)).chain;
        let mut worst = 0u64;
        for step in &chain {
            let ids: Vec<StationId> = step.x.iter().map(|&u| StationId(u)).collect();
            let pattern = WakePattern::simultaneous(&ids, 0).unwrap();
            let out = sim.run(&RoundRobin::new(n), &pattern, 0).unwrap();
            worst = worst.max(out.latency().unwrap() + 1);
        }
        assert!(
            forced <= worst,
            "k={k}: adversary claims {forced} rounds but worst measured was {worst}"
        );
        assert!(
            worst >= adv.bound(),
            "k={k}: round-robin beat Theorem 2.1?!"
        );
    }
}

#[test]
fn corollary_identity_numerically() {
    // For k > n/c (constant c), n−k+1 = Θ(k·log(n/k)+1): the ratio is
    // bounded above and below by constants over a wide range.
    for n in [1u32 << 10, 1 << 14, 1 << 18] {
        for frac in [2u32, 4, 8] {
            let k = n - n / frac; // k ∈ {n/2, 3n/4, 7n/8}
            let lhs = f64::from(n - k + 1);
            let rhs = f64::from(k) * (f64::from(n) / f64::from(k)).log2() + 1.0;
            let ratio = lhs / rhs;
            assert!((0.3..=1.5).contains(&ratio), "n={n}, k={k}: ratio {ratio}");
        }
    }
}

#[test]
fn scenario_c_pays_at_most_the_loglog_premium_over_b() {
    // §1: Scenario C's bound exceeds the optimal Θ(k log(n/k)) by at most
    // O(log log n)·(log n / log(n/k)). Measured on bursts, C must never be
    // more than that premium above B (with constant slack).
    let n = 1024u32;
    let sim = Simulator::new(SimConfig::new(n));
    let k = 16u32;
    let ids: Vec<StationId> = (0..k).map(|i| StationId(i * 64 + 7)).collect();
    let pattern = WakePattern::simultaneous(&ids, 0).unwrap();

    let mut b_total = 0u64;
    let mut c_total = 0u64;
    for seed in 0..8u64 {
        let b = sim
            .run(
                &WakeupWithK::new(n, k, FamilyProvider::random_with_seed(seed)),
                &pattern,
                seed,
            )
            .unwrap();
        let c = sim
            .run(
                &WakeupN::new(MatrixParams::new(n).with_seed(seed)),
                &pattern,
                seed,
            )
            .unwrap();
        b_total += b.latency().unwrap();
        c_total += c.latency().unwrap();
    }
    // Generous structural envelope: C ≤ 32 × B on this configuration
    // (in practice C is often *faster* on bursts thanks to the ρ sweep).
    assert!(
        c_total <= 32 * b_total.max(8),
        "Scenario C ({c_total}) implausibly slower than B ({b_total})"
    );
}

#[test]
fn rpd_k_expectation_tracks_log_k_not_k() {
    // Kushilevitz–Mansour: Ω(log k); Jurdziński–Stachowiak: O(log k).
    // Measured means across k must grow far slower than linearly.
    let n = 1u32 << 12;
    let sim = Simulator::new(SimConfig::new(n).with_max_slots(1_000_000));
    let mean_for = |k: u32| -> f64 {
        let ids: Vec<StationId> = (0..k).map(|i| StationId(i * (n / k))).collect();
        let pattern = WakePattern::simultaneous(&ids, 0).unwrap();
        let runs = 60u64;
        let total: u64 = (0..runs)
            .map(|seed| {
                sim.run(&RpdK::new(n, k), &pattern, seed)
                    .unwrap()
                    .latency()
                    .unwrap()
            })
            .sum();
        total as f64 / runs as f64
    };
    let m4 = mean_for(4);
    let m64 = mean_for(64);
    // k grew 16×; log k grew 3×. Allow up to 6× for noise — far below 16×.
    assert!(
        m64 < 6.0 * m4.max(1.0),
        "RPD-k scaling looks linear: mean(k=4)={m4:.1}, mean(k=64)={m64:.1}"
    );
}

#[test]
fn selective_family_lengths_beat_strongly_selective() {
    // The Komlós–Greenberg bound O(k log(n/k)) is polynomially smaller than
    // Kautz–Singleton's O(k² log² n) — check the concrete numbers.
    for (n, k) in [(1u32 << 10, 16u32), (1 << 14, 32)] {
        let random = FamilyProvider::default().family(n, k).len();
        let ks = FamilyProvider::KautzSingleton.family(n, k).len();
        assert!(random < ks, "(n={n}, k={k}): random {random} ≥ KS {ks}");
    }
}
