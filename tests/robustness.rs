//! Robustness: behaviour under broken promises and hostile configurations.
//!
//! DESIGN.md §5 pins the policy: a violated promise (wrong `k`, wrong `s`)
//! degrades to the interleaved round-robin guarantee instead of failing.

use mac_wakeup::prelude::*;

const N: u32 = 64;

#[test]
fn scenario_b_with_understated_k_still_solves_within_2n() {
    // Promise k = 2, adversary wakes 32: selectivity is void, round-robin
    // (even slots) still finishes within 2n.
    let protocol = WakeupWithK::new(N, 2, FamilyProvider::default());
    let ids: Vec<StationId> = (0..32).map(|i| StationId(i * 2)).collect();
    let pattern = WakePattern::simultaneous(&ids, 5).unwrap();
    let sim = Simulator::new(SimConfig::new(N).with_max_slots(10_000));
    let out = sim.run(&protocol, &pattern, 0).unwrap();
    assert!(out.solved());
    assert!(out.latency().unwrap() <= 2 * u64::from(N));
}

#[test]
fn scenario_a_with_wrong_s_still_solves_within_2n() {
    // The protocol believes s = 0 but the first wake-up is at 3: nobody
    // participates in select-among-the-first, round-robin must deliver.
    let protocol = WakeupWithS::new(N, 0, FamilyProvider::default());
    let ids: Vec<StationId> = [7u32, 30, 55].map(StationId).into();
    let pattern = WakePattern::simultaneous(&ids, 3).unwrap();
    let sim = Simulator::new(SimConfig::new(N).with_max_slots(10_000));
    let out = sim.run(&protocol, &pattern, 0).unwrap();
    assert!(out.solved());
    assert!(out.latency().unwrap() <= 2 * u64::from(N));
}

#[test]
fn scenario_a_with_partially_right_s_uses_both_components() {
    // Some stations wake exactly at the believed s, some later: the
    // participants' selective schedule races round-robin; whichever wins,
    // the run must be valid and solved.
    let s = 10u64;
    let protocol = WakeupWithS::new(N, s, FamilyProvider::default());
    let pattern = WakePattern::new(vec![
        (StationId(3), s),
        (StationId(9), s),
        (StationId(40), s + 1),
        (StationId(60), s + 30),
    ])
    .unwrap();
    let cfg = SimConfig::new(N).with_max_slots(10_000).with_transcript();
    let out = Simulator::new(cfg).run(&protocol, &pattern, 0).unwrap();
    assert!(out.solved());
    assert!(out.transcript.unwrap().check_invariants().is_empty());
}

#[test]
fn all_n_stations_waking_is_handled() {
    // The extreme k = n: time-division territory.
    let all: Vec<StationId> = (0..N).map(StationId).collect();
    let pattern = WakePattern::simultaneous(&all, 0).unwrap();
    let sim = Simulator::new(SimConfig::new(N).with_max_slots(10_000));
    for protocol in [
        Box::new(WakeupWithK::new(N, N, FamilyProvider::default())) as Box<dyn Protocol>,
        Box::new(WakeupWithS::new(N, 0, FamilyProvider::default())),
        Box::new(WakeupN::new(MatrixParams::new(N))),
        Box::new(RoundRobin::new(N)),
    ] {
        let out = sim.run(protocol.as_ref(), &pattern, 0).unwrap();
        assert!(out.solved(), "{} failed at k = n", protocol.name());
    }
}

#[test]
fn wakeup_n_without_restart_can_censor_but_with_restart_keeps_trying() {
    // Pathological setup: a tiny universe where the full scan is short and
    // the pattern wakes two stations in lockstep; with an unlucky seed the
    // scan may end without isolation. The restart extension keeps going.
    // (We don't *rely* on censoring happening — we assert the restart
    // variant never does worse than the plain one.)
    let n = 4u32;
    let ids: Vec<StationId> = [0u32, 1].map(StationId).into();
    let pattern = WakePattern::simultaneous(&ids, 0).unwrap();
    let sim = Simulator::new(SimConfig::new(n).with_max_slots(100_000));
    for seed in 0..20u64 {
        let plain = sim
            .run(
                &WakeupN::new(MatrixParams::new(n).with_seed(seed)),
                &pattern,
                seed,
            )
            .unwrap();
        let restarting = sim
            .run(
                &WakeupN::new(MatrixParams::new(n).with_seed(seed)).with_restart(true),
                &pattern,
                seed,
            )
            .unwrap();
        if let Some(l) = plain.latency() {
            assert_eq!(
                restarting.latency(),
                Some(l),
                "restart changed a solved run (seed {seed})"
            );
        } else {
            // Plain censored: restart must solve eventually or also censor —
            // but never be *worse* (it simulates at most the same slots).
            assert!(restarting.slots_simulated <= 100_000);
        }
    }
}

#[test]
fn degenerate_universes() {
    // n = 1: a single station, every protocol must solve immediately-ish.
    let pattern = WakePattern::simultaneous(&[StationId(0)], 0).unwrap();
    let sim = Simulator::new(SimConfig::new(1).with_max_slots(1_000));
    for protocol in [
        Box::new(RoundRobin::new(1)) as Box<dyn Protocol>,
        Box::new(WakeupWithK::new(1, 1, FamilyProvider::default())),
        Box::new(WakeupWithS::new(1, 0, FamilyProvider::default())),
        Box::new(WakeupN::new(MatrixParams::new(1))),
    ] {
        let out = sim.run(protocol.as_ref(), &pattern, 0).unwrap();
        assert!(out.solved(), "{} failed at n = 1", protocol.name());
    }
}

#[test]
fn spoiler_cannot_break_correctness_only_delay() {
    // Whatever pattern the spoiler finds, the protocol still solves within
    // its envelope (round-robin interleave: 2n).
    let protocol = WakeupWithK::new(N, 8, FamilyProvider::default());
    let sim = Simulator::new(SimConfig::new(N).with_max_slots(10_000));
    let ids: Vec<StationId> = (0..8).map(|i| StationId(i * 8)).collect();
    let start = WakePattern::simultaneous(&ids, 0).unwrap();
    let spoiled = SpoilerSearch::new(64, 4 * u64::from(N))
        .search(&sim, &protocol, start, 0)
        .unwrap();
    let out = spoiled.outcome;
    assert!(out.solved(), "spoiler broke the protocol");
    assert!(out.latency().unwrap() <= 2 * u64::from(N) + spoiled.pattern.last_wake());
}
